//! The cycle-level core pipeline.
//!
//! Per-cycle stage order (oldest work first, so same-cycle forwarding
//! flows naturally): writeback → commit → issue → dispatch → fetch.

use crate::config::CoreConfig;
use crate::slab::SeqSlab;
use crate::stats::{SimResult, TimingBreakdown, TimingClass};
use ballerino_energy::{EnergyEvents, StructureSizes};
use ballerino_frontend::{Btb, RenamedOp, Renamer, Tage};
use ballerino_isa::{MicroOp, OpClass, Trace, TraceDag};
use ballerino_mem::lsq::{Forward, MemRange};
use ballerino_mem::{AccessKind, Hierarchy, LoadQueue, Mdp, MdpConfig, StoreQueue};
use ballerino_sched::ports::PortArbiter;
use ballerino_sched::{
    BlockHorizon, DispatchOutcome, FuBusy, GrantBlock, HeldSet, PortAlloc, ReadyCtx, SchedUop,
    Scheduler, Scoreboard,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Store-to-load forwarding latency (cycles after AGU).
const FORWARD_LATENCY: u64 = 3;

/// Completion-ring span in cycles (power of two). Completions landing
/// within this many cycles of *now* go into a calendar ring instead of
/// the binary heap while the macro-step engine is running; anything
/// further out (long DRAM fills) falls back to the heap. 128 covers
/// every fixed execution latency and all but the rarest memory fills.
const RING_SPAN: u64 = 128;

/// Maximum grant-block planning horizon in cycles. Blocks rarely run
/// this long (a dependence on an unresolved event ends the plan, and
/// dispatch-driven wakes invalidate live blocks), so the effective
/// horizon adapts to the achieved block length; this cap bounds planner
/// work per attempt, halved in load-dense fetch windows where cache
/// timing invalidates long plans anyway.
const BLOCK_HORIZON: u64 = 64;

/// Minimum adaptive planning horizon: even in churny regimes a plan
/// covers at least this many cycles, so one successful block amortizes
/// its own planning pass.
const BLOCK_HORIZON_MIN: u64 = 8;

/// Fetch-window ops inspected (via [`TraceDag::loads_in`]) to decide
/// whether the upcoming region is load-dense for horizon sizing.
const BLOCK_DENSITY_WINDOW: usize = 256;

/// An invalidated block that served at least this many cycles paid for
/// its plan: replan immediately instead of climbing the backoff ladder
/// (dispatch-driven wakes kill blocks every few cycles in bursty code,
/// and that is the profitable regime, not a failure of the planner).
const BLOCK_MIN_SERVE: u64 = 2;

/// Planning stays eager while the achieved-block-length EWMA holds at
/// least this many cycles. Below it the regime is hostile — a streaming
/// front-end whose dispatch-driven wakes kill every plan within a few
/// cycles — and measured A/B shows even a few percent of short-block
/// engagement costs more than it saves, so the engine drops to one
/// probe plan per maximum backoff period. Regimes that thrive
/// (dispatch-quiet drains) rarely *record* block ends at all — their
/// blocks drop unrecorded at macro-loop exit — so their EWMA never
/// decays and planning stays eager.
const BLOCK_PROBE_EWMA: u64 = 8;

#[derive(Debug)]
struct Inflight {
    op: MicroOp,
    trace_idx: usize,
    renamed: RenamedOp,
    uop: SchedUop,
    decode_cycle: u64,
    dispatch_cycle: u64,
    issue_cycle: Option<u64>,
    complete_at: Option<u64>,
    completed: bool,
    class: TimingClass,
    mispredicted: bool,
    ready_cycle: u64,
    /// For stores: loads/stores the MDP serialized behind this store,
    /// released when it issues. Folding the list into the store's own
    /// entry (instead of a side `HashMap<store, Vec<waiter>>`) makes
    /// squash cleanup automatic — flushed stores take their waiter lists
    /// with them.
    waiters: Vec<u64>,
}

#[derive(Debug)]
struct Prepared {
    seq: u64,
    uop: SchedUop,
}

/// A simulated core: configuration + scheduler + all pipeline state.
pub struct Core {
    cfg: CoreConfig,
    sched: Box<dyn Scheduler>,
    sizes: StructureSizes,

    cycle: u64,
    next_seq: u64,

    renamer: Renamer,
    scb: Scoreboard,
    rob: VecDeque<u64>,
    inflight: SeqSlab<Inflight>,
    pending: Option<Prepared>,

    alloc_q: VecDeque<(usize, u64, bool)>,
    fetch_idx: usize,
    fetch_resume_at: u64,
    fetch_stalled: bool,
    /// Cache line currently streaming out of the L1I.
    fetch_line: Option<u64>,

    tage: Tage,
    btb: Btb,
    hier: Hierarchy,
    lq: LoadQueue,
    sq: StoreQueue,
    mdp: Option<Mdp>,
    held: HeldSet,
    arbiter: PortArbiter,
    fu_busy: FuBusy,
    events: BinaryHeap<Reverse<(u64, u64)>>,
    /// Near-future completion calendar used by the macro-step engine:
    /// `ring[t % RING_SPAN]` holds `(t, seq)` completions due at cycle
    /// `t`. Only populated while `in_macro`; flushed back into `events`
    /// when the fused loop exits so the per-cycle path never sees it.
    ring: Vec<Vec<(u64, u64)>>,
    /// Total entries across all ring buckets.
    ring_len: usize,
    /// Whether `process_issue` may route completions into the ring.
    in_macro: bool,
    /// Cycle before which the macro-step engine stays dormant after a
    /// failed (too-short) engagement. Purely a performance throttle: it
    /// shifts the `cycles_macro`/`cycles_skipped` split but never any
    /// simulated statistic.
    macro_backoff: u64,
    /// Current dormancy length, doubled on consecutive failed
    /// engagements and reset by a successful one.
    macro_backoff_len: u64,
    /// Cycle before which no new grant block is planned, after a block
    /// was declined or invalidated. Same exponential ladder as
    /// `macro_backoff`, and likewise purely a performance throttle.
    block_backoff: u64,
    /// Current block-planning dormancy length.
    block_backoff_len: u64,
    /// EWMA of recently achieved block lengths in cycles, used to size
    /// the next plan's horizon (planning far past the point dispatch
    /// kills the block is wasted planner work).
    block_len_ewma: u64,
    /// Scratch buffer for the macro loop's per-cycle writeback batch.
    wb_buf: Vec<u64>,
    /// Load-taint table indexed by physical-register number: the seq of
    /// the in-flight load whose value (transitively) feeds the register,
    /// or 0 for untainted (seqs start at 1). Dense because every rename
    /// consults it for each source.
    taint: Vec<u64>,
    /// Scratch buffer for issued seqs, reused across cycles.
    issue_buf: Vec<u64>,

    committed: u64,
    mispredicts: u64,
    /// Cycles fast-forwarded by the event-horizon engine.
    cycles_skipped: u64,
    /// Cycles executed inside the macro-step engine's fused loop.
    cycles_macro: u64,
    /// Cycles whose issue stage was served from a grant block (a subset
    /// of `cycles_macro`).
    cycles_block: u64,
    /// Grant blocks built / died to validation failure.
    blocks_built: u64,
    blocks_invalidated: u64,
    /// Built-block lengths, power-of-two buckets (last bucket open).
    block_len_hist: [u64; 8],
    /// The last horizon the event-horizon engine jumped to (diagnostic
    /// context for the no-forward-progress panic).
    last_skip_horizon: u64,
    stall_reasons: [u64; 5],
    violations: u64,
    dispatch_stalls: u64,
    timing: TimingBreakdown,
    energy: EnergyEvents,
}

impl Core {
    /// Builds a core around a scheduler.
    pub fn new(cfg: CoreConfig, sched: Box<dyn Scheduler>, sizes: StructureSizes) -> Self {
        let renamer = Renamer::new(cfg.int_regs, cfg.fp_regs);
        let scb = Scoreboard::new(renamer.total_phys());
        let hier = Hierarchy::new(&cfg.mem);
        let lq = LoadQueue::new(cfg.lq_entries);
        let sq = StoreQueue::new(cfg.sq_entries);
        let mdp = if cfg.use_mdp {
            Some(Mdp::new(MdpConfig::default()))
        } else {
            None
        };
        let total_phys = renamer.total_phys();
        let arbiter = PortArbiter::new(cfg.port_map.clone());
        Core {
            cfg,
            sched,
            sizes,
            cycle: 0,
            next_seq: 1,
            renamer,
            scb,
            rob: VecDeque::new(),
            inflight: SeqSlab::new(),
            pending: None,
            alloc_q: VecDeque::new(),
            fetch_idx: 0,
            fetch_resume_at: 0,
            fetch_stalled: false,
            fetch_line: None,
            tage: Tage::new(),
            btb: Btb::default(),
            hier,
            lq,
            sq,
            mdp,
            held: HeldSet::new(),
            arbiter,
            fu_busy: FuBusy::new(),
            events: BinaryHeap::new(),
            ring: (0..RING_SPAN).map(|_| Vec::new()).collect(),
            ring_len: 0,
            in_macro: false,
            macro_backoff: 0,
            macro_backoff_len: 0,
            block_backoff: 0,
            block_backoff_len: 0,
            block_len_ewma: BLOCK_HORIZON,
            wb_buf: Vec::new(),
            taint: vec![0; total_phys],
            issue_buf: Vec::new(),
            committed: 0,
            mispredicts: 0,
            cycles_skipped: 0,
            cycles_macro: 0,
            cycles_block: 0,
            blocks_built: 0,
            blocks_invalidated: 0,
            block_len_hist: [0; 8],
            last_skip_horizon: 0,
            stall_reasons: [0; 5],
            violations: 0,
            dispatch_stalls: 0,
            timing: TimingBreakdown::default(),
            energy: EnergyEvents::default(),
        }
    }

    /// Runs the trace to completion and returns the results.
    ///
    /// # Panics
    ///
    /// Panics if the machine stops making progress (a scheduler deadlock
    /// is always a bug, never a valid outcome).
    pub fn run(self, trace: &Trace) -> SimResult {
        self.run_with_dag(trace, None)
    }

    /// Like [`Core::run`], but reuses a pre-resolved dependence DAG for
    /// the trace (see [`TraceDag`]). Callers that simulate the same trace
    /// on many machines should resolve once (or use
    /// `ballerino_workloads::cached_dag`) and pass it here; `run` resolves
    /// a private copy when the macro-step engine is enabled.
    ///
    /// # Panics
    ///
    /// Panics if the machine stops making progress, or if `dag` was not
    /// resolved from `trace`.
    pub fn run_with_dag(mut self, trace: &Trace, dag: Option<&TraceDag>) -> SimResult {
        let started = std::time::Instant::now();
        let target = trace.len() as u64;
        let max_cycles = 600 * target + 200_000;
        let local_dag;
        let dag = if self.cfg.use_macro {
            Some(match dag {
                Some(d) => {
                    assert_eq!(d.len(), trace.len(), "DAG does not match trace");
                    d
                }
                None => {
                    local_dag = TraceDag::resolve(trace);
                    &local_dag
                }
            })
        } else {
            None
        };
        while self.committed < target {
            if let Some(dag) = dag {
                self.macro_step(trace, dag, target, max_cycles);
                if self.committed >= target {
                    break;
                }
            }
            if self.cfg.skip_idle {
                self.try_skip(trace, max_cycles);
            }
            self.step(trace);
            if self.cycle >= max_cycles {
                let head = self.rob.front().map(|s| {
                    let i = self.inflight.get(*s).expect("rob head inflight");
                    format!(
                        "seq={} class={:?} port={} issued={:?} complete={:?} held={} srcs_ready={} mdp_wait={:?}",
                        s, i.uop.class, i.uop.port, i.issue_cycle, i.complete_at,
                        self.held.contains(*s),
                        self.scb.srcs_ready(&i.uop.srcs, self.cycle),
                        i.uop.mdp_wait,
                    )
                });
                let loc = self.rob.front().map(|s| self.sched.debug_locate(*s));
                panic!(
                    "no forward progress: {} committed of {target} after {} cycles (sched {}, wl {}); rob head: {head:?}; locate: {loc:?}; occupancy {}/{}; held {}; cycles_skipped {}; cycles_macro {}; last skip horizon {}",
                    self.committed, self.cycle, self.sched.name(), trace.name,
                    self.sched.occupancy(), self.sched.capacity(), self.held.len(),
                    self.cycles_skipped, self.cycles_macro, self.last_skip_horizon,
                );
            }
        }
        let mut result = self.finish(trace);
        result.host_wall_s = started.elapsed().as_secs_f64();
        result
    }

    // ------------------------------------------------------ event horizon
    /// Fast-forwards `cycle` across a provably idle stretch.
    ///
    /// A cycle is *idle* when every stage would do nothing but
    /// deterministic bookkeeping: no completion event fires, the ROB head
    /// cannot commit, the scheduler is quiesced (its
    /// [`Scheduler::next_event_cycle`] contract), dispatch is stalled for
    /// a reason that cannot clear on its own, and fetch is stalled or
    /// drained. The earliest cycle at which any of those change is the
    /// *event horizon*; the skipped cycles' bookkeeping (stall counters,
    /// scheduler energy/head-state accounting) is replayed in closed form
    /// via [`Scheduler::note_idle_cycles`], so results are byte-identical
    /// to stepping every cycle. See ARCHITECTURE.md, "The quiesce
    /// contract".
    fn try_skip(&mut self, trace: &Trace, max_cycles: u64) {
        enum StallKind {
            /// A prepared μop is retrying dispatch each cycle.
            Pending,
            /// The alloc-queue head is blocked on `stall_reasons[i]`.
            Structural(usize),
            /// Nothing reaches the dispatch checks (empty or decode-gated).
            Idle,
        }

        let c0 = self.cycle;
        let mut horizon = u64::MAX;

        // Writeback: the earliest queued completion bounds the horizon; a
        // due event means this cycle is not idle.
        if let Some(&Reverse((t, _))) = self.events.peek() {
            if t <= c0 {
                return;
            }
            horizon = t;
        }

        // Commit: a completed ROB head would retire this cycle. (Completed
        // implies its event already fired, so the horizon needs no extra
        // bound here; issued-but-incomplete μops are covered by `events`.)
        if let Some(&seq) = self.rob.front() {
            let inf = self.inflight.get(seq).expect("rob head inflight");
            if inf.completed && inf.complete_at.map(|t| t <= c0).unwrap_or(false) {
                return;
            }
        }

        // Fetch: active fetch means the cycle is not idle; a pending
        // resume bounds the horizon. Checked before the scheduler because
        // it is by far the cheaper test — on busy cycles it returns
        // without paying for the scheduler's window walk.
        if !self.fetch_stalled
            && self.alloc_q.len() < self.cfg.alloc_queue
            && self.fetch_idx < trace.len()
        {
            if c0 >= self.fetch_resume_at {
                return;
            }
            horizon = horizon.min(self.fetch_resume_at);
        }

        // Dispatch: classify why it stalls, mirroring `dispatch` exactly.
        // Any path that would mutate state (prepare/offer success) aborts.
        let pending_uop = self.pending.as_ref().map(|p| p.uop);
        let stall = if pending_uop.is_some() {
            // Retry refused by the scheduler (it is quiesced with a
            // pending μop, which the contract defines as "would refuse").
            StallKind::Pending
        } else if let Some(&(trace_idx, decode_cycle, _)) = self.alloc_q.front() {
            if decode_cycle + self.cfg.rename_latency > c0 {
                horizon = horizon.min(decode_cycle + self.cfg.rename_latency);
                StallKind::Idle
            } else {
                let op = &trace.ops[trace_idx];
                if self.rob.len() >= self.cfg.rob_entries {
                    StallKind::Structural(0)
                } else if op.is_load() && !self.lq.has_space() {
                    StallKind::Structural(1)
                } else if op.is_store() && !self.sq.has_space() {
                    StallKind::Structural(2)
                } else if op
                    .dst
                    .is_some_and(|d| self.renamer.free_count(d.class()) == 0)
                {
                    // `prepare` fails on the free-list pop before any
                    // mutation, so this check is exact and side-effect-free.
                    StallKind::Structural(3)
                } else {
                    return; // dispatch would make progress
                }
            }
        } else {
            StallKind::Idle
        };

        // Scheduler (the most expensive test, so it runs last): `None`
        // means it cannot prove quiescence.
        {
            let ctx = ReadyCtx {
                cycle: c0,
                scb: &self.scb,
                held: &self.held,
            };
            match self.sched.next_event_cycle(&ctx, pending_uop.as_ref()) {
                None => return,
                Some(t) => {
                    if t <= c0 {
                        return;
                    }
                    horizon = horizon.min(t);
                }
            }
        }

        // Defensive floor: every completion is already queued in `events`
        // (scoreboard ready-at values and inflight `complete_at`s are set
        // in the same `process_issue` that pushes the event, so separate
        // scans of those structures would be redundant), but the memory
        // hierarchy's internal MSHR state is one abstraction boundary
        // away — bound by it cheaply. Only ever tightens the horizon.
        if let Some(t) = self.hier.next_fill_cycle(c0) {
            horizon = horizon.min(t);
        }
        debug_assert!(
            self.scb
                .min_pending_ready_cycle(c0)
                .is_none_or(|t| t >= horizon),
            "scoreboard wakeup below the horizon with no covering event"
        );

        // An unbounded horizon means a genuine deadlock; keep stepping so
        // the no-forward-progress panic fires with its diagnostics.
        if horizon == u64::MAX {
            return;
        }
        let x = horizon.min(max_cycles);
        if x <= c0 {
            return;
        }
        self.last_skip_horizon = x;
        let k = x - c0;

        // Replay the skipped cycles' bookkeeping in closed form.
        {
            let ctx = ReadyCtx {
                cycle: c0,
                scb: &self.scb,
                held: &self.held,
            };
            self.sched.note_idle_cycles(&ctx, pending_uop.as_ref(), k);
        }
        match stall {
            StallKind::Pending => {
                self.dispatch_stalls += k;
                self.stall_reasons[4] += k;
            }
            StallKind::Structural(i) => self.stall_reasons[i] += k,
            StallKind::Idle => {}
        }
        self.cycles_skipped += k;
        self.cycle = x;
    }

    // ---------------------------------------------------------- macro step
    /// Routes a completion event either into the near-future calendar
    /// ring (inside the macro loop) or the binary heap (everywhere else).
    /// Both stores carry `(t, seq)` so drain order is identical.
    #[inline]
    fn push_completion(&mut self, t: u64, seq: u64) {
        debug_assert!(t > self.cycle, "completions are always in the future");
        if self.in_macro && t - self.cycle < RING_SPAN {
            self.ring[(t % RING_SPAN) as usize].push((t, seq));
            self.ring_len += 1;
        } else {
            self.events.push(Reverse((t, seq)));
        }
    }

    /// Moves any completions still parked in the ring back into the heap
    /// so the per-cycle path (which only reads `events`) stays correct.
    fn flush_ring(&mut self) {
        if self.ring_len == 0 {
            return;
        }
        for bucket in &mut self.ring {
            for (t, seq) in bucket.drain(..) {
                self.events.push(Reverse((t, seq)));
            }
        }
        self.ring_len = 0;
    }

    /// Cheap entry gate for the macro loop: engage only when this cycle
    /// provably does something (a completion fires now, or fetch is
    /// actively streaming). A false negative just means the per-cycle
    /// path (with its event-horizon skip) handles the cycle instead.
    fn macro_ready(&self, trace: &Trace) -> bool {
        if let Some(&Reverse((t, _))) = self.events.peek() {
            if t <= self.cycle {
                return true;
            }
        }
        !self.fetch_stalled
            && self.cycle >= self.fetch_resume_at
            && self.alloc_q.len() < self.cfg.alloc_queue
            && self.fetch_idx < trace.len()
    }

    /// The planning horizon offered to [`Scheduler::macro_grant_block`]
    /// this cycle. The load-latency hint is the exact L1-hit completion
    /// path of `process_issue` (AGU next cycle, then the L1D hit
    /// latency), so optimistically chained load consumers verify clean
    /// whenever the load actually hits; the horizon length is halved in
    /// load-dense fetch windows, where cache timing invalidates long
    /// plans before they pay off. Both are heuristics — a wrong hint
    /// fails block validation, it never changes simulated state.
    fn block_horizon(&self, dag: &TraceDag) -> BlockHorizon {
        let hi = (self.fetch_idx + BLOCK_DENSITY_WINDOW).min(dag.len());
        let loads = dag.loads_in(self.fetch_idx, hi) as usize;
        let cap = if loads * 4 > hi.saturating_sub(self.fetch_idx) {
            BLOCK_HORIZON / 2
        } else {
            BLOCK_HORIZON
        };
        // Plan roughly twice as far as blocks have recently survived:
        // dispatch-driven wakes bound block lifetime in dense code, and
        // planning far past that point is pure wasted planner work.
        let cycles = (self.block_len_ewma * 2).clamp(BLOCK_HORIZON_MIN, cap);
        BlockHorizon {
            cycles,
            load_latency: 1 + self.cfg.mem.l1d.latency,
        }
    }

    /// Records a finished block's achieved length (cycles actually
    /// served before consumption or invalidation) in the diagnostic
    /// histogram and the horizon-sizing EWMA. Takes the fields directly
    /// so it can run while a [`ReadyCtx`] borrows the scoreboard.
    fn note_block_end(hist: &mut [u64; 8], ewma: &mut u64, served: u64) {
        hist[(served.max(1).ilog2() as usize).min(7)] += 1;
        // Floor division so a run of single-cycle deaths decays the
        // average all the way below `BLOCK_MIN_SERVE` (a ceiling here
        // would fix-point at 4 and the hostile-regime probe gate could
        // never engage).
        *ewma = (*ewma * 3 + served) / 4;
    }

    /// Executes a run of consecutive cycles in one fused pass while the
    /// pipeline stays in a steady busy regime.
    ///
    /// Each fused iteration performs the exact same stage sequence as
    /// [`Core::step`] (writeback → commit → issue → dispatch → fetch),
    /// so results are byte-identical to cycle stepping; the win is
    /// structural: completions drain from a calendar ring instead of the
    /// heap, issue is served from a pre-planned [`GrantBlock`] while its
    /// per-cycle validation holds (falling back to the scheduler's
    /// single-cycle [`Scheduler::macro_grant`] fast path, then a full
    /// select), and fetch uses the trace DAG's pre-resolved line-cross
    /// flags. The loop exits — falling back to the per-cycle path — at
    /// the first cycle with no activity (which the event-horizon engine
    /// then skips in closed form) and after any memory-order violation
    /// squash.
    fn macro_step(&mut self, trace: &Trace, dag: &TraceDag, target: u64, max_cycles: u64) {
        if self.cycle < self.macro_backoff || !self.macro_ready(trace) {
            return;
        }
        let fused0 = self.cycles_macro;
        self.in_macro = true;
        // The live grant block, if any. Owned here rather than by the
        // scheduler so every exit from the fused loop (violation, dead
        // cycle, commit target) drops it and the per-cycle path never
        // observes block state.
        let mut block: Option<GrantBlock> = None;
        while self.committed < target && self.cycle < max_cycles {
            let violations0 = self.violations;
            let mut activity = false;

            // -- writeback: drain this cycle's ring bucket plus any due
            // heap entries (long-latency fills), in (cycle, seq) order.
            let mut wb = std::mem::take(&mut self.wb_buf);
            wb.clear();
            {
                let bucket = &mut self.ring[(self.cycle % RING_SPAN) as usize];
                self.ring_len -= bucket.len();
                for (t, seq) in bucket.drain(..) {
                    debug_assert_eq!(t, self.cycle, "ring bucket holds only this cycle");
                    wb.push(seq);
                }
            }
            while let Some(&Reverse((t, seq))) = self.events.peek() {
                if t > self.cycle {
                    break;
                }
                debug_assert_eq!(t, self.cycle, "events are never past-due");
                self.events.pop();
                wb.push(seq);
            }
            if !wb.is_empty() {
                activity = true;
                wb.sort_unstable();
                for &seq in &wb {
                    self.writeback_one(seq);
                }
            }
            self.wb_buf = wb;

            // -- commit
            let committed0 = self.committed;
            self.commit();
            activity |= self.committed != committed0;

            // -- issue: served from the live grant block when its
            // validation holds, else the scheduler's single-cycle fast
            // path, else a full select.
            let mut out = std::mem::take(&mut self.issue_buf);
            out.clear();
            {
                let ctx = ReadyCtx {
                    cycle: self.cycle,
                    scb: &self.scb,
                    held: &self.held,
                };
                let mut ports = PortAlloc::new(
                    self.cfg.port_map.num_ports(),
                    self.cfg.issue_width,
                    &self.fu_busy,
                    self.cycle,
                );
                // A fully-consumed block was a successful engagement:
                // record its length, reset the dormancy ladder, and
                // re-plan immediately.
                if let Some(b) = block.take_if(|b| self.cycle >= b.end) {
                    Self::note_block_end(
                        &mut self.block_len_hist,
                        &mut self.block_len_ewma,
                        b.end - b.start,
                    );
                    self.block_backoff_len = 0;
                }
                let mut served = false;
                loop {
                    if self.cfg.use_block && block.is_none() && self.cycle >= self.block_backoff {
                        // Regime detector: when recent blocks kept dying
                        // within a couple of cycles (a streaming
                        // front-end whose dispatch-driven wakes bound
                        // every plan's life), planning costs more than
                        // serving saves — drop to one probe plan per
                        // maximum backoff period. A probe that survives
                        // a drain or stall phase pulls the EWMA back up
                        // and re-arms the engine.
                        if self.block_len_ewma < BLOCK_PROBE_EWMA {
                            self.block_backoff = self.cycle + self.cfg.macro_backoff_max;
                        }
                        let horizon = self.block_horizon(dag);
                        match self.sched.macro_grant_block(&ctx, &mut ports, horizon) {
                            Some(b) => {
                                self.blocks_built += 1;
                                block = Some(b);
                            }
                            None => {
                                // Declined: the regime is unplannable
                                // right now; stop paying the planning
                                // cost for a while.
                                self.block_backoff_len = (self.block_backoff_len * 2)
                                    .clamp(self.cfg.macro_backoff_min, self.cfg.macro_backoff_max);
                                self.block_backoff = self.cycle + self.block_backoff_len;
                            }
                        }
                    }
                    let Some(b) = block.as_mut() else { break };
                    if self.sched.block_advance(&ctx, b, &mut out) {
                        served = true;
                        self.cycles_block += 1;
                        break;
                    }
                    // The contract guarantees a failed advance mutated
                    // nothing, so this cycle can still be served — by a
                    // fresh plan (whose first advance always validates)
                    // when the dead block ran long enough to have paid
                    // for its own planning pass, else by the live path.
                    let ran = self.cycle - b.start;
                    Self::note_block_end(&mut self.block_len_hist, &mut self.block_len_ewma, ran);
                    block = None;
                    self.blocks_invalidated += 1;
                    if ran >= BLOCK_MIN_SERVE && self.block_len_ewma >= BLOCK_PROBE_EWMA {
                        continue;
                    }
                    self.block_backoff_len = (self.block_backoff_len * 2)
                        .clamp(self.cfg.macro_backoff_min, self.cfg.macro_backoff_max);
                    self.block_backoff = self.cycle + self.block_backoff_len;
                    break;
                }
                if !served && !self.sched.macro_grant(&ctx, &mut ports, &mut out) {
                    self.sched.issue(&ctx, &mut ports, &mut out);
                }
            }
            if !out.is_empty() {
                activity = true;
                out.sort_unstable();
                for &seq in &out {
                    self.process_issue(seq);
                }
            }
            self.issue_buf = out;

            // -- dispatch (progress = queue drained, pending consumed, or
            // a new μop renamed; a refused retry or structural stall is
            // bookkeeping the event-horizon replay reproduces, not work)
            let alloc0 = self.alloc_q.len();
            let pending0 = self.pending.is_some();
            let seq0 = self.next_seq;
            self.dispatch(trace);
            activity |= self.alloc_q.len() != alloc0
                || self.pending.is_some() != pending0
                || self.next_seq != seq0;

            // -- fetch
            let idx0 = self.fetch_idx;
            self.fetch_macro(trace, dag);
            activity |= self.fetch_idx != idx0;

            self.cycle += 1;
            self.cycles_macro += 1;
            // A squash rewound the front end; resynchronize through the
            // per-cycle path before fusing again.
            if self.violations != violations0 {
                break;
            }
            if !activity {
                // A dead cycle: executing it performed exactly the
                // bookkeeping the event-horizon replay would have, so the
                // skip engine can take over from the next cycle.
                break;
            }
        }
        self.in_macro = false;
        self.flush_ring();
        // Hysteresis: a run that died almost immediately means the regime
        // is not steady (memory-bound phases fuse a couple of cycles, hit
        // a dead cycle, and exit). Re-arming the engine every cycle there
        // costs more than the fused cycles save, so back off and let the
        // per-cycle path (with its event-horizon skip) carry the phase.
        if self.cycles_macro - fused0 < self.cfg.macro_min_run {
            self.macro_backoff_len = (self.macro_backoff_len * 2)
                .clamp(self.cfg.macro_backoff_min, self.cfg.macro_backoff_max);
            self.macro_backoff = self.cycle + self.macro_backoff_len;
        } else {
            self.macro_backoff_len = 0;
        }
    }

    fn step(&mut self, trace: &Trace) {
        self.writeback();
        self.commit();
        self.issue_stage();
        self.dispatch(trace);
        self.fetch(trace);
        self.cycle += 1;
    }

    // ---------------------------------------------------------- writeback
    fn writeback(&mut self) {
        while let Some(&Reverse((t, seq))) = self.events.peek() {
            if t > self.cycle {
                break;
            }
            self.events.pop();
            self.writeback_one(seq);
        }
    }

    /// Completes one μop: marks it done, wakes consumers, and unstalls
    /// fetch on a resolved mispredict. Seqs flushed by a squash after
    /// their event was queued are skipped harmlessly.
    #[inline]
    fn writeback_one(&mut self, seq: u64) {
        let Some(inf) = self.inflight.get_mut(seq) else {
            return;
        };
        inf.completed = true;
        if let Some(d) = inf.uop.dst {
            self.energy.prf_writes += 1;
            self.sched.on_complete(d);
        }
        if inf.op.is_branch() && inf.mispredicted {
            // Resolution redirects the front end after the recovery
            // penalty (Table I).
            self.fetch_stalled = false;
            self.fetch_resume_at = self.cycle + self.cfg.recovery_penalty;
        }
    }

    // ------------------------------------------------------------- commit
    fn commit(&mut self) {
        for _ in 0..self.cfg.issue_width {
            let Some(&seq) = self.rob.front() else { break };
            let done = {
                let inf = self.inflight.get(seq).expect("rob head inflight");
                inf.completed && inf.complete_at.map(|t| t <= self.cycle).unwrap_or(false)
            };
            if !done {
                break;
            }
            self.rob.pop_front();
            // Copy out the handful of fields commit needs, then drop the
            // entry in place — cheaper than moving the whole `Inflight`
            // off the slab just to read six words from it.
            let (prev_dst, class_op, pc, mem, class, dc, pd, rc, ic) = {
                let inf = self.inflight.get(seq).expect("committing inflight");
                (
                    inf.renamed.prev_dst,
                    inf.op.class,
                    inf.op.pc,
                    inf.op.mem,
                    inf.class,
                    inf.decode_cycle,
                    inf.dispatch_cycle,
                    inf.ready_cycle,
                    inf.issue_cycle.expect("committed ⇒ issued"),
                )
            };
            self.inflight.discard(seq);
            self.energy.rob_reads += 1;
            if let Some(prev) = prev_dst {
                self.renamer.release(prev);
                self.taint[prev.raw() as usize] = 0;
            }
            if class_op == OpClass::Load {
                self.lq.release(seq);
            }
            if class_op == OpClass::Store {
                self.sq.release(seq);
                // The store writes the cache at commit.
                if let Some(m) = mem {
                    let _ = self.hier.access(m.addr, pc, self.cycle, AccessKind::Store);
                }
            }
            self.timing.record(class, dc, pd, rc, ic);
            self.committed += 1;
        }
    }

    // -------------------------------------------------------------- issue
    fn issue_stage(&mut self) {
        let mut out = std::mem::take(&mut self.issue_buf);
        out.clear();
        {
            let ctx = ReadyCtx {
                cycle: self.cycle,
                scb: &self.scb,
                held: &self.held,
            };
            let mut ports = PortAlloc::new(
                self.cfg.port_map.num_ports(),
                self.cfg.issue_width,
                &self.fu_busy,
                self.cycle,
            );
            self.sched.issue(&ctx, &mut ports, &mut out);
        }
        out.sort_unstable();
        for &seq in &out {
            self.process_issue(seq);
        }
        self.issue_buf = out;
    }

    /// Executes one issued μop: computes its completion time, updates the
    /// LSQ/scoreboard, and handles violations and MDP releases.
    fn process_issue(&mut self, seq: u64) {
        let cycle = self.cycle;
        // μops flushed by an earlier violation in the same issue batch
        // are silently skipped.
        let Some(inf) = self.inflight.get_mut(seq) else {
            return;
        };
        debug_assert!(inf.issue_cycle.is_none(), "double issue of {seq}");
        inf.issue_cycle = Some(cycle);
        let (pc, mem, uop) = (inf.op.pc, inf.op.mem, inf.uop);
        self.arbiter.release(uop.port);
        self.energy.prf_reads += uop.srcs.iter().flatten().count() as u64;
        self.energy.fu.record(uop.class);

        let completion = match uop.class {
            OpClass::Load => {
                let m = mem.expect("load has mem info");
                let range = MemRange {
                    addr: m.addr,
                    size: m.size,
                };
                self.energy.lsq_searches += 1;
                let fwd = self.sq.forward_source(seq, range);
                let done = match fwd {
                    Forward::FromStore { .. } => cycle + 1 + FORWARD_LATENCY,
                    Forward::FromCache => {
                        let (done, _) = self.hier.access(m.addr, pc, cycle + 1, AccessKind::Load);
                        done
                    }
                };
                let fwd_from = match fwd {
                    Forward::FromStore { store_seq } => Some(store_seq),
                    Forward::FromCache => None,
                };
                self.lq.set_executed(seq, range, fwd_from);
                self.energy.lsq_writes += 1;
                done
            }
            OpClass::Store => {
                let m = mem.expect("store has mem info");
                let range = MemRange {
                    addr: m.addr,
                    size: m.size,
                };
                self.sq.set_addr(seq, range);
                self.energy.lsq_writes += 1;
                self.energy.lsq_searches += 1;
                let violation = self.lq.violation_on_store(seq, range);

                // Release MDP waiters: the store has issued.
                if let Some(mdp) = self.mdp.as_mut() {
                    if let Some(ssid) = uop.ssid {
                        mdp.on_store_issued(ssid, seq);
                    }
                }
                let ws = self
                    .inflight
                    .get_mut(seq)
                    .map(|i| std::mem::take(&mut i.waiters))
                    .unwrap_or_default();
                for w in ws {
                    self.held.remove(w);
                    if let Some(wi) = self.inflight.get_mut(w) {
                        wi.ready_cycle = wi.ready_cycle.max(cycle + 1);
                    }
                }

                if let Some((load_seq, load_pc)) = violation {
                    self.squash_from(load_seq, pc, load_pc);
                }
                cycle + 1
            }
            other => cycle + other.exec_latency() as u64,
        };

        // The violation squash may have flushed this store? Never: the
        // squash point is a *younger* load. The store itself survives.
        let Some(inf) = self.inflight.get_mut(seq) else {
            return;
        };
        inf.complete_at = Some(completion);
        inf.ready_cycle = inf
            .ready_cycle
            .max(self.scb.srcs_ready_cycle(&uop.srcs).min(cycle));
        if uop.class.unpipelined() {
            self.fu_busy
                .reserve(uop.port, uop.class, cycle + uop.class.exec_latency() as u64);
        }
        if let Some(d) = uop.dst {
            self.scb.set_ready_at(d, completion);
        }
        self.push_completion(completion, seq);
    }

    // ----------------------------------------------------------- dispatch
    fn dispatch(&mut self, trace: &Trace) {
        for _ in 0..self.cfg.front_width {
            // Retry a previously prepared-but-stalled μop first.
            if let Some(p) = self.pending.take() {
                match self.offer(p) {
                    Some(p) => {
                        self.pending = Some(p);
                        self.dispatch_stalls += 1;
                        self.stall_reasons[4] += 1;
                        return;
                    }
                    None => continue,
                }
            }
            let Some(&(trace_idx, decode_cycle, mispred)) = self.alloc_q.front() else {
                return;
            };
            if decode_cycle + self.cfg.rename_latency > self.cycle {
                return;
            }
            let op = &trace.ops[trace_idx];
            // Structural resources checked before renaming.
            if self.rob.len() >= self.cfg.rob_entries {
                self.stall_reasons[0] += 1;
                return;
            }
            if op.is_load() && !self.lq.has_space() {
                self.stall_reasons[1] += 1;
                return;
            }
            if op.is_store() && !self.sq.has_space() {
                self.stall_reasons[2] += 1;
                return;
            }
            let Some(prepared) = self.prepare(trace_idx, decode_cycle, mispred, op.clone()) else {
                self.stall_reasons[3] += 1;
                return; // out of physical registers; retry next cycle
            };
            self.alloc_q.pop_front();
            if let Some(p) = self.offer(prepared) {
                self.pending = Some(p);
                self.dispatch_stalls += 1;
                return;
            }
        }
    }

    /// Renames one μop and builds its scheduler view. Returns `None` when
    /// the free list is empty (nothing is consumed).
    fn prepare(
        &mut self,
        trace_idx: usize,
        decode_cycle: u64,
        mispredicted: bool,
        op: MicroOp,
    ) -> Option<Prepared> {
        let renamed = self.renamer.rename(&op).ok()?;
        let seq = self.next_seq;
        self.next_seq += 1;

        self.energy.rename_lookups += (op.num_srcs() + op.dst.is_some() as usize) as u64;
        if op.dst.is_some() {
            self.energy.rename_writes += 1;
        }
        if let Some(d) = renamed.dst {
            self.scb.allocate(d);
        }

        // MDP advice: store sets serialize loads (and stores) behind the
        // last in-flight store of their set.
        let mut ssid = None;
        let mut mdp_wait = None;
        if let Some(mdp) = self.mdp.as_mut() {
            if op.is_load() {
                self.energy.mdp_lookups += 1;
                let a = mdp.on_rename_load(op.pc);
                ssid = a.ssid;
                mdp_wait = a.wait_for;
            } else if op.is_store() {
                self.energy.mdp_lookups += 1;
                self.energy.mdp_updates += 1;
                let a = mdp.on_rename_store(op.pc, seq);
                ssid = a.ssid;
                mdp_wait = a.wait_for;
            }
        }
        // Only hold on stores that are still in flight and un-issued.
        if let Some(ws) = mdp_wait {
            match self.inflight.get_mut(ws) {
                Some(store) if store.issue_cycle.is_none() => {
                    self.held.insert(seq);
                    store.waiters.push(seq);
                }
                _ => mdp_wait = None,
            }
        }

        // Fig. 3c class: Ld / LdC / Rst via load-taint propagation.
        let class = if op.is_load() {
            TimingClass::Ld
        } else {
            let tainted = renamed.srcs.iter().flatten().any(|s| {
                let lseq = self.taint[s.raw() as usize];
                lseq != 0
                    && self
                        .inflight
                        .get(lseq)
                        .map(|i| !i.completed)
                        .unwrap_or(false)
            });
            if tainted {
                TimingClass::LdC
            } else {
                TimingClass::Rst
            }
        };
        if let Some(d) = renamed.dst {
            if op.is_load() {
                self.taint[d.raw() as usize] = seq;
            } else if class == TimingClass::LdC {
                let inherited = renamed
                    .srcs
                    .iter()
                    .flatten()
                    .map(|s| self.taint[s.raw() as usize])
                    .find(|&l| l != 0)
                    .unwrap_or(0);
                self.taint[d.raw() as usize] = inherited;
            } else {
                self.taint[d.raw() as usize] = 0;
            }
        }

        let port = self.arbiter.assign(op.class);
        let uop = SchedUop {
            seq,
            pc: op.pc,
            class: op.class,
            port,
            srcs: renamed.srcs,
            dst: renamed.dst,
            ssid,
            mdp_wait,
            load_dep: class == TimingClass::LdC,
        };
        let inf = Inflight {
            op,
            trace_idx,
            renamed,
            uop,
            decode_cycle,
            dispatch_cycle: 0,
            issue_cycle: None,
            complete_at: None,
            completed: false,
            class,
            mispredicted,
            ready_cycle: 0,
            waiters: Vec::new(),
        };
        self.inflight.insert(seq, inf);
        Some(Prepared { seq, uop })
    }

    /// Offers a prepared μop to the scheduler; returns it back on stall.
    fn offer(&mut self, p: Prepared) -> Option<Prepared> {
        let outcome = {
            let ctx = ReadyCtx {
                cycle: self.cycle,
                scb: &self.scb,
                held: &self.held,
            };
            self.sched.try_dispatch(p.uop, &ctx)
        };
        match outcome {
            DispatchOutcome::Stall(_) => return Some(p),
            DispatchOutcome::Accepted | DispatchOutcome::AcceptedIssued => {}
        }
        let seq = p.seq;
        self.rob.push_back(seq);
        self.energy.rob_writes += 1;
        {
            let inf = self.inflight.get_mut(seq).expect("prepared inflight");
            inf.dispatch_cycle = self.cycle;
            if inf.op.is_load() {
                let ok = self.lq.allocate(seq, inf.op.pc);
                debug_assert!(ok, "LQ space checked at prepare");
                self.energy.lsq_writes += 1;
            }
            if inf.op.is_store() {
                let ok = self.sq.allocate(seq, inf.op.pc);
                debug_assert!(ok, "SQ space checked at prepare");
                self.energy.lsq_writes += 1;
            }
        }
        if outcome == DispatchOutcome::AcceptedIssued {
            self.process_issue(seq);
        }
        None
    }

    // -------------------------------------------------------------- fetch
    fn fetch(&mut self, trace: &Trace) {
        if self.fetch_stalled || self.cycle < self.fetch_resume_at {
            return;
        }
        let mut fetched = 0;
        while fetched < self.cfg.front_width
            && self.alloc_q.len() < self.cfg.alloc_queue
            && self.fetch_idx < trace.len()
        {
            let op = &trace.ops[self.fetch_idx];
            // Instruction-cache access: crossing into a new line consults
            // the L1I; a miss stalls fetch until the line arrives.
            let line = op.pc / 64;
            if self.fetch_line != Some(line) {
                let ready = self.hier.ifetch(op.pc, self.cycle);
                self.fetch_line = Some(line);
                if ready > self.cycle + self.hier.l1i.latency() {
                    self.fetch_resume_at = ready;
                    break;
                }
            }
            let mut mispred = false;
            if let Some(b) = op.branch {
                self.energy.bp_lookups += 1;
                let pred = self.tage.predict(op.pc);
                let dir_correct = self.tage.update(op.pc, pred, b.taken);
                let target_pred = self.btb.lookup(op.pc);
                self.btb.update(op.pc, b.target);
                mispred = !dir_correct || (b.taken && target_pred != Some(b.target));
                if mispred {
                    self.mispredicts += 1;
                }
            }
            self.alloc_q
                .push_back((self.fetch_idx, self.cycle, mispred));
            self.energy.fetched_uops += 1;
            self.energy.decoded_uops += 1;
            self.fetch_idx += 1;
            fetched += 1;
            if mispred {
                // Wrong-path fetch is not simulated: the front end waits
                // for the branch to resolve.
                self.fetch_stalled = true;
                break;
            }
        }
        if fetched > 0 {
            self.energy.l1i_accesses += 1;
        }
    }

    /// [`Core::fetch`] with the trace DAG's pre-resolved line-cross
    /// flags: within one call ops stream sequentially, so after the first
    /// op's real line comparison the `line_cross` bit decides whether the
    /// L1I is consulted — byte-identical, one fewer lookup per op.
    fn fetch_macro(&mut self, trace: &Trace, dag: &TraceDag) {
        if self.fetch_stalled || self.cycle < self.fetch_resume_at {
            return;
        }
        let mut fetched = 0;
        let mut first = true;
        while fetched < self.cfg.front_width
            && self.alloc_q.len() < self.cfg.alloc_queue
            && self.fetch_idx < trace.len()
        {
            let op = &trace.ops[self.fetch_idx];
            let cross = if first {
                // `fetch_line` may refer to a non-adjacent op (squash
                // redirect, resume mid-line): compare for real once.
                self.fetch_line != Some(op.pc / 64)
            } else {
                dag.op(self.fetch_idx).line_cross
            };
            first = false;
            if cross {
                let ready = self.hier.ifetch(op.pc, self.cycle);
                self.fetch_line = Some(op.pc / 64);
                if ready > self.cycle + self.hier.l1i.latency() {
                    self.fetch_resume_at = ready;
                    break;
                }
            }
            let mut mispred = false;
            if let Some(b) = op.branch {
                self.energy.bp_lookups += 1;
                let pred = self.tage.predict(op.pc);
                let dir_correct = self.tage.update(op.pc, pred, b.taken);
                let target_pred = self.btb.lookup(op.pc);
                self.btb.update(op.pc, b.target);
                mispred = !dir_correct || (b.taken && target_pred != Some(b.target));
                if mispred {
                    self.mispredicts += 1;
                }
            }
            self.alloc_q
                .push_back((self.fetch_idx, self.cycle, mispred));
            self.energy.fetched_uops += 1;
            self.energy.decoded_uops += 1;
            self.fetch_idx += 1;
            fetched += 1;
            if mispred {
                // Wrong-path fetch is not simulated: the front end waits
                // for the branch to resolve.
                self.fetch_stalled = true;
                break;
            }
        }
        if fetched > 0 {
            self.energy.l1i_accesses += 1;
        }
    }

    // -------------------------------------------------------------- squash
    /// Flushes every μop with `seq >= first_bad` (the violating load and
    /// everything younger), restores the RAT by walking the ROB tail
    /// first, trains the MDP, and redirects fetch.
    fn squash_from(&mut self, first_bad: u64, store_pc: u64, load_pc: u64) {
        self.violations += 1;
        let cycle = self.cycle;
        let flush_upto = first_bad - 1;
        let mut dests = Vec::new();
        let mut refetch_idx = None;

        // The pending (renamed but un-dispatched) μop is the youngest.
        if let Some(p) = self.pending.take() {
            if p.seq >= first_bad {
                let inf = self.inflight.remove(p.seq).expect("pending inflight");
                self.rollback_one(&inf, &mut dests);
                refetch_idx = Some(inf.trace_idx);
            } else {
                self.pending = Some(p);
            }
        }

        while let Some(&back) = self.rob.back() {
            if back < first_bad {
                break;
            }
            self.rob.pop_back();
            let inf = self.inflight.remove(back).expect("rob entry inflight");
            self.rollback_one(&inf, &mut dests);
            refetch_idx = Some(inf.trace_idx);
        }

        self.sched.flush_after(flush_upto, &dests);
        self.lq.flush_after(flush_upto);
        self.sq.flush_after(flush_upto);
        if let Some(mdp) = self.mdp.as_mut() {
            mdp.flush_after(flush_upto);
            mdp.on_violation(load_pc, store_pc);
            self.energy.mdp_updates += 2;
        }
        // Flushed stores' MDP waiter lists died with their inflight
        // entries; surviving stores may still list flushed waiter seqs,
        // which release as harmless no-ops when the store issues.

        self.alloc_q.clear();
        self.fetch_idx = refetch_idx.expect("squash flushed at least the load");
        self.fetch_stalled = false;
        self.fetch_resume_at = cycle + self.cfg.recovery_penalty;
    }

    fn rollback_one(&mut self, inf: &Inflight, dests: &mut Vec<ballerino_isa::PhysReg>) {
        self.renamer.rollback(inf.op.dst, &inf.renamed);
        if let Some(d) = inf.renamed.dst {
            self.scb.force_ready(d);
            self.taint[d.raw() as usize] = 0;
            dests.push(d);
        }
        if inf.issue_cycle.is_none() {
            self.arbiter.release(inf.uop.port);
        }
        self.held.remove(inf.uop.seq);
        self.energy.rename_writes += 1; // RAT restore
    }

    // -------------------------------------------------------------- finish
    fn finish(mut self, trace: &Trace) -> SimResult {
        self.energy.cycles = self.cycle;
        self.energy.sched = self.sched.energy_events();
        self.energy.l1d_accesses = self.hier.l1d.hits + self.hier.l1d.misses;
        self.energy.l2_accesses = self.hier.l2.hits + self.hier.l2.misses;
        self.energy.l3_accesses = self.hier.l3.hits + self.hier.l3.misses;
        self.energy.dram_accesses = self.hier.dram.row_hits + self.hier.dram.row_misses;

        SimResult {
            scheduler: self.sched.name().to_string(),
            workload: trace.name.clone(),
            cycles: self.cycle,
            committed: self.committed,
            mispredicts: self.mispredicts,
            violations: self.violations,
            dispatch_stalls: self.dispatch_stalls,
            stall_reasons: self.stall_reasons,
            timing: self.timing,
            issue_breakdown: self.sched.issue_breakdown(),
            steer: self.sched.steer_stats(),
            heads: self.sched.head_stats(),
            mem: self.hier.stats,
            energy: self.energy,
            sizes: self.sizes,
            freq_ghz: self.cfg.freq_ghz,
            host_wall_s: 0.0,
            cycles_skipped: self.cycles_skipped,
            cycles_macro: self.cycles_macro,
            cycles_block: self.cycles_block,
            blocks_built: self.blocks_built,
            blocks_invalidated: self.blocks_invalidated,
            block_len_hist: self.block_len_hist,
        }
    }
}
