//! # ballerino-sim
//!
//! The execution substrate of the reproduction: a trace-driven,
//! cycle-level superscalar core model (our stand-in for the paper's
//! Multi2Sim + Ramulator setup — see DESIGN.md §1 for the substitution
//! argument).
//!
//! The pipeline is fetch → decode/allocation queue → 2-stage rename (+
//! steer) → dispatch → *scheduler* → execute → writeback → commit, with:
//!
//! * TAGE + BTB branch prediction, fetch stall on mispredictions and a
//!   Table I recovery penalty after resolution,
//! * full register renaming with ROB-walk squash recovery,
//! * a load/store queue with store-to-load forwarding, memory-order
//!   violation squashes, and store-set MDP serialization,
//! * the Table I cache/DRAM hierarchy with MSHRs and stride prefetching,
//! * per-μop timing records (decode/dispatch/ready/issue) that feed the
//!   Fig. 3c / Fig. 12 breakdowns,
//! * energy micro-event counting that feeds `ballerino-energy`.
//!
//! The scheduler — the design under evaluation — is any implementation of
//! [`ballerino_sched::Scheduler`], selected via [`MachineKind`].

#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod core_ref;
pub mod machine;
pub mod slab;
pub mod stats;

pub use crate::core::Core;
pub use config::{CoreConfig, Width};
pub use machine::{
    build_scheduler, build_scheduler_point, run_machine, run_machine_reference,
    run_machine_with_dag, run_point, DesignPoint, MachineKind,
};
pub use slab::SeqSlab;
pub use stats::{SimResult, TimingBreakdown, TimingClass};
