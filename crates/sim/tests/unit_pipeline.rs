//! Hand-built-trace unit tests of specific pipeline mechanisms: exact
//! store-to-load forwarding, violation squash and re-execution, MDP
//! hold timing, branch-mispredict fetch stalls, and resource
//! backpressure. Each trace isolates one mechanism.

use ballerino_isa::{ArchReg, MicroOp, OpClass, Trace};
use ballerino_sim::{run_machine, MachineKind, Width};

fn run(t: &Trace, kind: MachineKind) -> ballerino_sim::SimResult {
    run_machine(kind, Width::Eight, t)
}

/// Repeated store→load to one address with the store's data ready:
/// forwarding should make the loads fast (no cache latency stacking) and
/// produce zero violations once the MDP has trained.
#[test]
fn store_load_forwarding_is_fast_and_clean() {
    let mut t = Trace::new("fwd");
    for i in 0..2_000u64 {
        let base = 0x400 + (i % 50) * 12;
        t.push(MicroOp::alu(base, ArchReg::int(1), [None, None]));
        t.push(MicroOp::store(
            base + 4,
            Some(ArchReg::int(1)),
            None,
            0x9000,
        ));
        t.push(MicroOp::load(base + 8, ArchReg::int(2), None, 0x9000));
    }
    let r = run(&t, MachineKind::OutOfOrder);
    assert_eq!(r.committed, t.len() as u64);
    // After warmup the loads forward from the SQ; IPC should be solid.
    assert!(r.ipc() > 1.0, "forwarding path too slow: {}", r.ipc());
}

/// A load that races an older store to the same address violates exactly
/// once per (untrained) static pair, then the store set serializes it.
#[test]
fn violations_are_learned_away() {
    let mut t = Trace::new("viol");
    for i in 0..1_500u64 {
        // Store data depends on a load (slow); the reload is ready.
        t.push(MicroOp::load(
            0x400,
            ArchReg::int(1),
            None,
            0x1_0000 + (i % 512) * 64,
        ));
        t.push(MicroOp::store(0x404, Some(ArchReg::int(1)), None, 0xA000));
        t.push(MicroOp::load(0x408, ArchReg::int(2), None, 0xA000));
        t.push(MicroOp::alu(
            0x40c,
            ArchReg::int(3),
            [Some(ArchReg::int(2)), None],
        ));
    }
    let with = run(&t, MachineKind::OutOfOrder);
    let without = run(&t, MachineKind::OutOfOrderNoMdp);
    assert!(
        with.violations <= 5,
        "MDP should learn the pair: {}",
        with.violations
    );
    assert!(
        without.violations > 50,
        "without MDP the pair should keep violating: {}",
        without.violations
    );
    assert_eq!(with.committed, t.len() as u64);
    assert_eq!(without.committed, t.len() as u64);
}

/// A perfectly-predictable loop has near-zero mispredicts; flipping to
/// random outcomes produces fetch stalls visible as cycle inflation.
#[test]
fn mispredicts_inflate_cycles() {
    let mk = |random: bool| {
        let mut t = Trace::new("br");
        let mut x = 999u64;
        for i in 0..3_000u64 {
            t.push(MicroOp::alu(0x400, ArchReg::int(1), [None, None]));
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let taken = if random { x & 1 == 1 } else { i % 8 != 7 };
            t.push(MicroOp::branch(0x404, Some(ArchReg::int(1)), taken, 0x400));
        }
        t
    };
    let easy = run(&mk(false), MachineKind::OutOfOrder);
    let hard = run(&mk(true), MachineKind::OutOfOrder);
    assert!(easy.mispredicts * 5 < hard.mispredicts);
    assert!(
        hard.cycles > 2 * easy.cycles,
        "{} vs {}",
        hard.cycles,
        easy.cycles
    );
}

/// Back-to-back dependent ALU ops must sustain exactly IPC 1 on every
/// out-of-order-capable design (the wakeup-select loop supports it).
#[test]
fn dependent_chain_sustains_ipc_one() {
    let mut t = Trace::new("chain");
    for _ in 0..4_000u64 {
        t.push(MicroOp::alu(
            0x400,
            ArchReg::int(1),
            [Some(ArchReg::int(1)), None],
        ));
    }
    for kind in [
        MachineKind::OutOfOrder,
        MachineKind::Ballerino,
        MachineKind::Ces,
    ] {
        let r = run(&t, kind);
        assert!(
            (r.ipc() - 1.0).abs() < 0.05,
            "{kind:?} chain IPC {} should be ~1.0",
            r.ipc()
        );
    }
}

/// Unpipelined divides on the single divider port serialize: a stream of
/// dependent-free divides is limited by the divider occupancy.
#[test]
fn divider_occupancy_limits_throughput() {
    let mut t = Trace::new("div");
    for i in 0..600u64 {
        t.push(MicroOp::compute(
            0x400,
            OpClass::IntDiv,
            ArchReg::int((i % 8) as u16),
            [None, None],
        ));
    }
    let r = run(&t, MachineKind::OutOfOrder);
    // 600 divides × 20-cycle unpipelined divider ≈ 12 000 cycles minimum.
    assert!(
        r.cycles >= 600 * 20,
        "divider not serialized: {} cycles",
        r.cycles
    );
}

/// FP multiplies only exist on two ports: throughput caps at 2/cycle even
/// with unlimited parallelism.
#[test]
fn fp_port_pressure_caps_throughput() {
    let mut t = Trace::new("fp");
    for i in 0..4_000u64 {
        t.push(MicroOp::compute(
            0x400 + (i % 16) * 4,
            OpClass::FpMul,
            ArchReg::fp((i % 16) as u16),
            [None, None],
        ));
    }
    let r = run(&t, MachineKind::OutOfOrder);
    assert!(r.ipc() <= 2.05, "only 2 FP-mul ports exist: {}", r.ipc());
    assert!(r.ipc() > 1.7, "FP ports underutilized: {}", r.ipc());
}

/// An instruction working set far larger than the L1I produces
/// instruction-fetch stalls (cold front end), visible against a tiny
/// loop with the same instruction mix.
#[test]
fn icache_pressure_slows_fetch() {
    let mk = |static_ops: u64| {
        let mut t = Trace::new("icache");
        for i in 0..6_000u64 {
            let pc = 0x40_0000 + (i % static_ops) * 4;
            t.push(MicroOp::alu(
                pc,
                ArchReg::int((i % 24) as u16),
                [None, None],
            ));
        }
        t
    };
    let small = run(&mk(64), MachineKind::OutOfOrder); // fits L1I easily
    let huge = run(&mk(400_000), MachineKind::OutOfOrder); // 1.6 MB of code
    assert!(
        huge.cycles > small.cycles * 2,
        "instruction misses must hurt: {} vs {}",
        huge.cycles,
        small.cycles
    );
}

/// The load queue bounds outstanding loads: a machine with LQ 72 cannot
/// have more than 72 loads in flight, which caps IPC for pure-load
/// streams that miss to DRAM.
#[test]
fn load_queue_bounds_mlp() {
    let mut t = Trace::new("lq");
    let mut x = 7u64;
    for i in 0..3_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t.push(MicroOp::load(
            0x400 + (i % 8) * 4,
            ArchReg::int((i % 8) as u16),
            None,
            0x1000_0000 + (x % (64 << 20)) / 64 * 64,
        ));
    }
    let r = run(&t, MachineKind::OutOfOrder);
    assert_eq!(r.committed, t.len() as u64);
    // Random DRAM loads under an 8-MSHR L1: deep sub-1 IPC.
    assert!(
        r.ipc() < 0.5,
        "DRAM-bound loads cannot be fast: {}",
        r.ipc()
    );
}

/// In-order commit: a store only becomes visible (and releases its SQ
/// entry) at commit, so SQ capacity backpressures store bursts.
#[test]
fn store_bursts_respect_sq_capacity() {
    let mut t = Trace::new("st");
    for i in 0..3_000u64 {
        t.push(MicroOp::store(
            0x400 + (i % 8) * 4,
            None,
            None,
            0x2_0000 + (i % 1024) * 8,
        ));
    }
    let r = run(&t, MachineKind::OutOfOrder);
    assert_eq!(r.committed, t.len() as u64);
    assert!(
        r.ipc() <= 4.0,
        "stores bounded by dispatch width: {}",
        r.ipc()
    );
}
