//! Skip-on vs skip-off equivalence for the event-horizon engine.
//!
//! The engine may only fast-forward cycles it can prove are pure
//! bookkeeping, and must replay that bookkeeping in closed form — so
//! every reported statistic (cycles, IPC, stall counters, energy
//! micro-events, head states, steering outcomes, ...) must be
//! byte-identical with skipping on and off, for every scheduler. The
//! comparison goes through `format!("{result:?}")` on the full
//! [`SimResult`] after zeroing the fields that are *allowed* to differ
//! (`host_wall_s`, `cycles_skipped`, `cycles_macro`, and the
//! block-grant instrumentation — toggling the skip engine shifts which
//! cycles the macro-step engine fuses or block-serves, never what they
//! compute).

use ballerino_isa::rng::Rng64;
use ballerino_isa::Trace;
use ballerino_sched::SchedEnergyEvents;
use ballerino_sim::{build_scheduler, Core, MachineKind, Width};
use ballerino_workloads::{workload, workload_names};

const ALL_KINDS: [MachineKind; 18] = [
    MachineKind::InOrder,
    MachineKind::OutOfOrder,
    MachineKind::OutOfOrderOldestFirst,
    MachineKind::OutOfOrderNoMdp,
    MachineKind::Ces,
    MachineKind::CesMda,
    MachineKind::Casino,
    MachineKind::Fxa,
    MachineKind::BallerinoStep1,
    MachineKind::BallerinoStep2,
    MachineKind::Ballerino,
    MachineKind::BallerinoIdeal,
    MachineKind::Ballerino12,
    MachineKind::BallerinoN(4),
    MachineKind::LoadSliceCore,
    MachineKind::DelayAndBypass,
    MachineKind::Ldt,
    MachineKind::BallerinoLdt,
];

/// Runs one machine with skipping forced on or off and returns the
/// normalized result rendering, the skipped-cycle count, and the typed
/// scheduler energy micro-events.
fn run_normalized(
    kind: MachineKind,
    width: Width,
    trace: &Trace,
    skip: bool,
) -> (String, u64, SchedEnergyEvents) {
    let (mut cfg, sched, sizes) = build_scheduler(kind, width);
    cfg.skip_idle = skip;
    let mut r = Core::new(cfg, sched, sizes).run(trace);
    let skipped = r.cycles_skipped;
    let sched_energy = r.energy.sched;
    r.host_wall_s = 0.0;
    r.cycles_skipped = 0;
    r.cycles_macro = 0;
    r.cycles_block = 0;
    r.blocks_built = 0;
    r.blocks_invalidated = 0;
    r.block_len_hist = [0; 8];
    (format!("{r:?}"), skipped, sched_energy)
}

#[test]
fn every_machine_is_skip_invariant_on_randomized_workloads() {
    let names = workload_names();
    let mut rng = Rng64::new(0xBA11_E51A);
    for kind in ALL_KINDS {
        // Several random (workload, seed, width) draws per machine.
        for _ in 0..3 {
            let name = names[rng.index(names.len())];
            let seed = rng.next_u64();
            let width = [Width::Two, Width::Four, Width::Eight][rng.index(3)];
            let n = 300 + rng.index(200);
            let trace = workload(name, n, seed);
            let (off, _, e_off) = run_normalized(kind, width, &trace, false);
            let (on, _, e_on) = run_normalized(kind, width, &trace, true);
            // Typed comparison first: a `Debug` rendering change can never
            // mask a drifting scheduler energy counter.
            assert_eq!(
                e_off, e_on,
                "{kind:?} {width:?} scheduler energy events diverge with skipping on \
                 ({name}, seed {seed:#x}, n {n})"
            );
            assert_eq!(
                off, on,
                "{kind:?} {width:?} diverges with skipping on ({name}, seed {seed:#x}, n {n})"
            );
        }
    }
}

#[test]
fn skipping_engages_on_memory_bound_workloads() {
    // The engine must actually fire where it matters: long-latency misses
    // with a quiesced scheduler. A pointer chase at 8-wide OoO spends most
    // of its cycles waiting on DRAM.
    let trace = workload("pointer_chase", 2_000, 7);
    let (_, skipped, _) = run_normalized(MachineKind::OutOfOrder, Width::Eight, &trace, true);
    assert!(
        skipped > 0,
        "event-horizon engine never fired on pointer_chase"
    );
    let (_, skipped_off, _) = run_normalized(MachineKind::OutOfOrder, Width::Eight, &trace, false);
    assert_eq!(
        skipped_off, 0,
        "cycles_skipped must stay zero with skip_idle off"
    );
}
