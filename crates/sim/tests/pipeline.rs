//! End-to-end pipeline tests: every machine kind runs every kind of
//! workload to completion, and first-order performance orderings hold.

use ballerino_sim::{run_machine, MachineKind, Width};
use ballerino_workloads::workload;

const N: usize = 6_000;

fn ipc(kind: MachineKind, wl: &str) -> f64 {
    let t = workload(wl, N, 42);
    let r = run_machine(kind, Width::Eight, &t);
    assert_eq!(
        r.committed,
        t.len() as u64,
        "{kind:?} on {wl} must commit everything"
    );
    r.ipc()
}

#[test]
fn all_machines_complete_a_mixed_workload() {
    let t = workload("int_crunch", 3_000, 7);
    for kind in [
        MachineKind::InOrder,
        MachineKind::OutOfOrder,
        MachineKind::OutOfOrderOldestFirst,
        MachineKind::OutOfOrderNoMdp,
        MachineKind::Ces,
        MachineKind::CesMda,
        MachineKind::Casino,
        MachineKind::Fxa,
        MachineKind::BallerinoStep1,
        MachineKind::BallerinoStep2,
        MachineKind::Ballerino,
        MachineKind::BallerinoIdeal,
        MachineKind::Ballerino12,
    ] {
        let r = run_machine(kind, Width::Eight, &t);
        assert_eq!(r.committed, t.len() as u64, "{kind:?}");
        assert!(r.ipc() > 0.1, "{kind:?} ipc {}", r.ipc());
        assert!(r.ipc() <= 8.0, "{kind:?} ipc {}", r.ipc());
    }
}

#[test]
fn all_machines_survive_memory_violation_workloads() {
    // branchy_sort has spill store→load pairs that trigger violations and
    // MDP training.
    let t = workload("branchy_sort", 3_000, 9);
    for kind in [
        MachineKind::OutOfOrder,
        MachineKind::OutOfOrderNoMdp,
        MachineKind::Ces,
        MachineKind::Ballerino,
    ] {
        let r = run_machine(kind, Width::Eight, &t);
        assert_eq!(r.committed, t.len() as u64, "{kind:?}");
    }
}

#[test]
fn ooo_beats_ino_substantially_on_ilp_workload() {
    let ino = ipc(MachineKind::InOrder, "gemm_blocked");
    let ooo = ipc(MachineKind::OutOfOrder, "gemm_blocked");
    assert!(
        ooo > 1.5 * ino,
        "OoO should be far faster than InO on ILP-rich code: {ooo:.2} vs {ino:.2}"
    );
}

#[test]
fn ballerino_lands_between_casino_and_ooo() {
    let wl = "hash_join";
    let casino = ipc(MachineKind::Casino, wl);
    let ballerino = ipc(MachineKind::Ballerino12, wl);
    let ooo = ipc(MachineKind::OutOfOrder, wl);
    assert!(
        ballerino >= 0.95 * casino,
        "Ballerino-12 should not lose to CASINO: {ballerino:.2} vs {casino:.2}"
    );
    assert!(
        ballerino <= 1.05 * ooo,
        "Ballerino-12 should not beat OoO by much: {ballerino:.2} vs {ooo:.2}"
    );
}

#[test]
fn mdp_slashes_violations_and_helps_high_ilp_code() {
    // High-IPC code is where violation squashes destroy the most in-flight
    // work, so the MDP's serialization pays off most clearly there.
    let t = workload("int_crunch", N, 11);
    let with = run_machine(MachineKind::OutOfOrder, Width::Eight, &t);
    let without = run_machine(MachineKind::OutOfOrderNoMdp, Width::Eight, &t);
    assert!(
        with.violations * 10 < without.violations.max(1),
        "MDP must remove ≳90% of violations: {} vs {}",
        with.violations,
        without.violations
    );
    assert!(
        with.ipc() > 1.05 * without.ipc(),
        "MDP should speed up high-ILP spill code: {} vs {}",
        with.ipc(),
        without.ipc()
    );
}

#[test]
fn pointer_chase_is_slow_everywhere() {
    let ooo = ipc(MachineKind::OutOfOrder, "pointer_chase");
    assert!(
        ooo < 1.5,
        "dependent DRAM misses cannot run fast, got {ooo}"
    );
}

#[test]
fn widths_scale_monotonically_for_ooo() {
    let t = workload("gemm_blocked", N, 5);
    let w2 = run_machine(MachineKind::OutOfOrder, Width::Two, &t);
    let w4 = run_machine(MachineKind::OutOfOrder, Width::Four, &t);
    let w8 = run_machine(MachineKind::OutOfOrder, Width::Eight, &t);
    assert!(w4.ipc() > w2.ipc());
    assert!(w8.ipc() > w4.ipc());
}

#[test]
fn timing_records_cover_all_committed_uops() {
    use ballerino_sim::stats::TimingClass;
    let t = workload("stream_triad", N, 3);
    let r = run_machine(MachineKind::Ballerino, Width::Eight, &t);
    let total = r.timing.count(TimingClass::Ld)
        + r.timing.count(TimingClass::LdC)
        + r.timing.count(TimingClass::Rst);
    assert_eq!(total, r.committed);
}

#[test]
fn energy_events_are_populated() {
    let t = workload("mixed_media", 3_000, 1);
    let r = run_machine(MachineKind::OutOfOrder, Width::Eight, &t);
    assert!(r.energy.cycles > 0);
    assert!(r.energy.fetched_uops >= r.committed);
    assert!(r.energy.sched.cam_broadcasts > 0);
    assert!(r.energy.prf_writes > 0);
    assert!(r.energy.l1d_accesses > 0);
}

#[test]
fn ballerino_issues_from_both_siq_and_piqs() {
    let t = workload("hash_join", N, 2);
    let r = run_machine(MachineKind::Ballerino, Width::Eight, &t);
    assert!(
        r.issue_breakdown.from_siq > 0,
        "S-IQ must filter ready μops"
    );
    assert!(
        r.issue_breakdown.from_piq > 0,
        "P-IQs must issue chain μops"
    );
}

#[test]
fn fxa_executes_a_large_fraction_in_ixu() {
    let t = workload("int_crunch", N, 2);
    let r = run_machine(MachineKind::Fxa, Width::Eight, &t);
    let frac = r.issue_breakdown.from_ixu as f64 / r.issue_breakdown.total() as f64;
    assert!(frac > 0.25, "IXU fraction too small: {frac:.2}");
}

#[test]
fn branch_mispredictions_are_observed_on_random_branches() {
    let t = workload("compress_lz", N, 4);
    let r = run_machine(MachineKind::OutOfOrder, Width::Eight, &t);
    assert!(
        r.mispredicts > 50,
        "random branches must mispredict, got {}",
        r.mispredicts
    );
}

#[test]
fn all_machines_complete_at_every_width() {
    let t = workload("mixed_media", 2_000, 13);
    for kind in [
        MachineKind::InOrder,
        MachineKind::OutOfOrder,
        MachineKind::Ces,
        MachineKind::CesMda,
        MachineKind::Casino,
        MachineKind::Fxa,
        MachineKind::Ballerino,
        MachineKind::Ballerino12,
    ] {
        for width in [Width::Two, Width::Four, Width::Eight, Width::Ten] {
            let r = run_machine(kind, width, &t);
            assert_eq!(r.committed, t.len() as u64, "{kind:?} at {width:?}");
            let cap = match width {
                Width::Two => 2.0,
                Width::Four => 4.0,
                _ => 8.0,
            };
            assert!(
                r.ipc() <= cap,
                "{kind:?} at {width:?}: IPC {} over cap",
                r.ipc()
            );
        }
    }
}

#[test]
fn ten_wide_flattens_for_inorder_but_not_ooo() {
    // §VI-E1: InO's achievable ILP saturates at 8-wide.
    let t = workload("gemm_blocked", N, 3);
    let ino8 = run_machine(MachineKind::InOrder, Width::Eight, &t);
    let ino10 = run_machine(MachineKind::InOrder, Width::Ten, &t);
    assert!(
        ino10.ipc() < ino8.ipc() * 1.05,
        "InO should not gain from 10-wide: {} vs {}",
        ino10.ipc(),
        ino8.ipc()
    );
}
