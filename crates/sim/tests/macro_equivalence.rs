//! Macro-on vs macro-off equivalence for the macro-step engine.
//!
//! The fused loop may only take over cycles it executes with the exact
//! per-cycle stage semantics (writeback → commit → issue → dispatch →
//! fetch), so every reported statistic (cycles, IPC, stall counters,
//! energy micro-events, head states, steering outcomes, ...) must be
//! byte-identical with the engine on and off, for every scheduler. The
//! comparison goes through `format!("{result:?}")` on the full
//! [`SimResult`] after zeroing the fields that are *allowed* to differ
//! (`host_wall_s`, `cycles_skipped`, `cycles_macro` — the engine
//! executes some cycles the event-horizon skip would otherwise
//! fast-forward, shifting the split between the two counters while the
//! total bookkeeping stays identical).

use ballerino_isa::rng::Rng64;
use ballerino_isa::{Trace, TraceDag};
use ballerino_sched::SchedEnergyEvents;
use ballerino_sim::{build_scheduler, Core, MachineKind, SimResult, Width};
use ballerino_workloads::{workload, workload_names};

const ALL_KINDS: [MachineKind; 18] = [
    MachineKind::InOrder,
    MachineKind::OutOfOrder,
    MachineKind::OutOfOrderOldestFirst,
    MachineKind::OutOfOrderNoMdp,
    MachineKind::Ces,
    MachineKind::CesMda,
    MachineKind::Casino,
    MachineKind::Fxa,
    MachineKind::BallerinoStep1,
    MachineKind::BallerinoStep2,
    MachineKind::Ballerino,
    MachineKind::BallerinoIdeal,
    MachineKind::Ballerino12,
    MachineKind::BallerinoN(4),
    MachineKind::LoadSliceCore,
    MachineKind::DelayAndBypass,
    MachineKind::Ldt,
    MachineKind::BallerinoLdt,
];

/// Runs one machine with the macro-step engine forced on or off (and the
/// event-horizon skip set as given) and returns the normalized result
/// rendering, the raw result, and the typed scheduler energy events.
fn run_normalized(
    kind: MachineKind,
    width: Width,
    trace: &Trace,
    use_macro: bool,
    skip: bool,
) -> (String, SimResult, SchedEnergyEvents) {
    let (mut cfg, sched, sizes) = build_scheduler(kind, width);
    cfg.use_macro = use_macro;
    cfg.skip_idle = skip;
    let dag = use_macro.then(|| TraceDag::resolve(trace));
    let r = Core::new(cfg, sched, sizes).run_with_dag(trace, dag.as_ref());
    let sched_energy = r.energy.sched;
    let mut z = r.clone();
    z.host_wall_s = 0.0;
    z.cycles_skipped = 0;
    z.cycles_macro = 0;
    (format!("{z:?}"), r, sched_energy)
}

#[test]
fn every_machine_is_macro_invariant_on_randomized_workloads() {
    let names = workload_names();
    let mut rng = Rng64::new(0x5EED_DA61);
    for kind in ALL_KINDS {
        // Several random (workload, seed, width) draws per machine.
        for _ in 0..3 {
            let name = names[rng.index(names.len())];
            let seed = rng.next_u64();
            let width = [Width::Two, Width::Four, Width::Eight][rng.index(3)];
            let n = 300 + rng.index(200);
            let trace = workload(name, n, seed);
            let (off, r_off, e_off) = run_normalized(kind, width, &trace, false, true);
            let (on, r_on, e_on) = run_normalized(kind, width, &trace, true, true);
            // Typed comparison first: a `Debug` rendering change can never
            // mask a drifting scheduler energy counter.
            assert_eq!(
                e_off, e_on,
                "{kind:?} {width:?} scheduler energy events diverge with the macro \
                 engine on ({name}, seed {seed:#x}, n {n})"
            );
            assert_eq!(
                off, on,
                "{kind:?} {width:?} diverges with the macro engine on \
                 ({name}, seed {seed:#x}, n {n})"
            );
            assert_eq!(
                r_off.cycles_macro, 0,
                "cycles_macro must stay zero with use_macro off"
            );
            // Every simulated cycle is stepped, skipped, or fused — the
            // instrumentation counters can never exceed the total.
            assert!(
                r_on.cycles_macro + r_on.cycles_skipped <= r_on.cycles,
                "macro/skip accounting exceeds total cycles ({kind:?} {name})"
            );
        }
    }
}

#[test]
fn macro_and_skip_axes_commute() {
    // The two throughput engines hand cycles back and forth; all four
    // on/off combinations must agree on every statistic.
    let mut rng = Rng64::new(0xC0FF_EE00);
    let names = workload_names();
    for kind in [
        MachineKind::Ballerino,
        MachineKind::OutOfOrder,
        MachineKind::Ces,
    ] {
        let name = names[rng.index(names.len())];
        let seed = rng.next_u64();
        let trace = workload(name, 400, seed);
        let mut renders = Vec::new();
        for use_macro in [false, true] {
            for skip in [false, true] {
                let (r, _, _) = run_normalized(kind, Width::Eight, &trace, use_macro, skip);
                renders.push((use_macro, skip, r));
            }
        }
        let (_, _, base) = &renders[0];
        for (m, s, r) in &renders[1..] {
            assert_eq!(
                r, base,
                "{kind:?} diverges at macro={m} skip={s} ({name}, seed {seed:#x})"
            );
        }
    }
}

#[test]
fn macro_engine_engages_on_dense_workloads() {
    // The engine must actually fire where it matters: dense compute with
    // streaming fetch. A blocked GEMM at 8-wide OoO spends most of its
    // cycles with every stage busy. (Large enough that the cold-cache
    // warm-up — where the backoff throttle rightly keeps the engine
    // dormant — is a small fraction of the run.)
    let trace = workload("gemm_blocked", 5_000, 7);
    let (_, r_on, _) = run_normalized(MachineKind::OutOfOrder, Width::Eight, &trace, true, true);
    assert!(
        r_on.cycles_macro > 0,
        "macro-step engine never fired on gemm_blocked"
    );
    assert!(
        r_on.cycles_macro * 2 > r_on.cycles,
        "macro-step engine fused under half of gemm_blocked's cycles \
         ({} of {})",
        r_on.cycles_macro,
        r_on.cycles
    );
}
