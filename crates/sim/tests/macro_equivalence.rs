//! Macro-on vs macro-off equivalence for the macro-step engine.
//!
//! The fused loop may only take over cycles it executes with the exact
//! per-cycle stage semantics (writeback → commit → issue → dispatch →
//! fetch), so every reported statistic (cycles, IPC, stall counters,
//! energy micro-events, head states, steering outcomes, ...) must be
//! byte-identical with the engine on and off, for every scheduler. The
//! comparison goes through `format!("{result:?}")` on the full
//! [`SimResult`] after zeroing the fields that are *allowed* to differ
//! (`host_wall_s`, `cycles_skipped`, `cycles_macro` — the engine
//! executes some cycles the event-horizon skip would otherwise
//! fast-forward, shifting the split between the two counters while the
//! total bookkeeping stays identical).

use ballerino_isa::rng::Rng64;
use ballerino_isa::{Trace, TraceDag};
use ballerino_sched::SchedEnergyEvents;
use ballerino_sim::{build_scheduler, Core, MachineKind, SimResult, Width};
use ballerino_workloads::{workload, workload_names};

const ALL_KINDS: [MachineKind; 18] = [
    MachineKind::InOrder,
    MachineKind::OutOfOrder,
    MachineKind::OutOfOrderOldestFirst,
    MachineKind::OutOfOrderNoMdp,
    MachineKind::Ces,
    MachineKind::CesMda,
    MachineKind::Casino,
    MachineKind::Fxa,
    MachineKind::BallerinoStep1,
    MachineKind::BallerinoStep2,
    MachineKind::Ballerino,
    MachineKind::BallerinoIdeal,
    MachineKind::Ballerino12,
    MachineKind::BallerinoN(4),
    MachineKind::LoadSliceCore,
    MachineKind::DelayAndBypass,
    MachineKind::Ldt,
    MachineKind::BallerinoLdt,
];

/// Runs one machine with the macro-step engine and block-grant serving
/// forced on or off (and the event-horizon skip set as given) and
/// returns the normalized result rendering, the raw result, and the
/// typed scheduler energy events.
fn run_normalized(
    kind: MachineKind,
    width: Width,
    trace: &Trace,
    use_macro: bool,
    skip: bool,
    use_block: bool,
) -> (String, SimResult, SchedEnergyEvents) {
    let (mut cfg, sched, sizes) = build_scheduler(kind, width);
    cfg.use_macro = use_macro;
    cfg.skip_idle = skip;
    cfg.use_block = use_block;
    let dag = use_macro.then(|| TraceDag::resolve(trace));
    let r = Core::new(cfg, sched, sizes).run_with_dag(trace, dag.as_ref());
    let sched_energy = r.energy.sched;
    let mut z = r.clone();
    z.host_wall_s = 0.0;
    z.cycles_skipped = 0;
    z.cycles_macro = 0;
    z.cycles_block = 0;
    z.blocks_built = 0;
    z.blocks_invalidated = 0;
    z.block_len_hist = [0; 8];
    (format!("{z:?}"), r, sched_energy)
}

#[test]
fn every_machine_is_macro_invariant_on_randomized_workloads() {
    let names = workload_names();
    let mut rng = Rng64::new(0x5EED_DA61);
    for kind in ALL_KINDS {
        // Several random (workload, seed, width) draws per machine.
        for _ in 0..3 {
            let name = names[rng.index(names.len())];
            let seed = rng.next_u64();
            let width = [Width::Two, Width::Four, Width::Eight][rng.index(3)];
            let n = 300 + rng.index(200);
            let trace = workload(name, n, seed);
            let (off, r_off, e_off) = run_normalized(kind, width, &trace, false, true, true);
            let (on, r_on, e_on) = run_normalized(kind, width, &trace, true, true, true);
            let (on_nb, r_on_nb, e_on_nb) = run_normalized(kind, width, &trace, true, true, false);
            // Typed comparison first: a `Debug` rendering change can never
            // mask a drifting scheduler energy counter.
            assert_eq!(
                e_off, e_on,
                "{kind:?} {width:?} scheduler energy events diverge with the macro \
                 engine on ({name}, seed {seed:#x}, n {n})"
            );
            assert_eq!(
                e_off, e_on_nb,
                "{kind:?} {width:?} scheduler energy events diverge with block \
                 serving off ({name}, seed {seed:#x}, n {n})"
            );
            assert_eq!(
                off, on,
                "{kind:?} {width:?} diverges with the macro engine on \
                 ({name}, seed {seed:#x}, n {n})"
            );
            assert_eq!(
                off, on_nb,
                "{kind:?} {width:?} diverges with block serving off \
                 ({name}, seed {seed:#x}, n {n})"
            );
            assert_eq!(
                r_off.cycles_macro, 0,
                "cycles_macro must stay zero with use_macro off"
            );
            assert_eq!(
                r_off.cycles_block + r_off.blocks_built,
                0,
                "block instrumentation must stay zero with use_macro off"
            );
            assert_eq!(
                r_on_nb.cycles_block + r_on_nb.blocks_built,
                0,
                "block instrumentation must stay zero with use_block off"
            );
            // Every simulated cycle is stepped, skipped, or fused — the
            // instrumentation counters can never exceed the total, and
            // block-served cycles are a subset of fused ones.
            assert!(
                r_on.cycles_macro + r_on.cycles_skipped <= r_on.cycles,
                "macro/skip accounting exceeds total cycles ({kind:?} {name})"
            );
            assert!(
                r_on.cycles_block <= r_on.cycles_macro,
                "block cycles exceed fused cycles ({kind:?} {name})"
            );
        }
    }
}

#[test]
fn macro_skip_and_block_axes_commute() {
    // The throughput engines hand cycles back and forth; all eight
    // on/off combinations must agree on every statistic.
    let mut rng = Rng64::new(0xC0FF_EE00);
    let names = workload_names();
    for kind in [
        MachineKind::Ballerino,
        MachineKind::OutOfOrder,
        MachineKind::Ces,
    ] {
        let name = names[rng.index(names.len())];
        let seed = rng.next_u64();
        let trace = workload(name, 400, seed);
        let mut renders = Vec::new();
        for use_macro in [false, true] {
            for skip in [false, true] {
                for use_block in [false, true] {
                    let (r, _, _) =
                        run_normalized(kind, Width::Eight, &trace, use_macro, skip, use_block);
                    renders.push((use_macro, skip, use_block, r));
                }
            }
        }
        let (_, _, _, base) = &renders[0];
        for (m, s, b, r) in &renders[1..] {
            assert_eq!(
                r, base,
                "{kind:?} diverges at macro={m} skip={s} block={b} \
                 ({name}, seed {seed:#x})"
            );
        }
    }
}

#[test]
fn macro_engine_engages_on_dense_workloads() {
    // The engine must actually fire where it matters: dense compute with
    // streaming fetch. A blocked GEMM at 8-wide OoO spends most of its
    // cycles with every stage busy. (Large enough that the cold-cache
    // warm-up — where the backoff throttle rightly keeps the engine
    // dormant — is a small fraction of the run.)
    let trace = workload("gemm_blocked", 5_000, 7);
    let (_, r_on, _) = run_normalized(
        MachineKind::OutOfOrder,
        Width::Eight,
        &trace,
        true,
        true,
        true,
    );
    assert!(
        r_on.cycles_macro > 0,
        "macro-step engine never fired on gemm_blocked"
    );
    assert!(
        r_on.cycles_macro * 2 > r_on.cycles,
        "macro-step engine fused under half of gemm_blocked's cycles \
         ({} of {})",
        r_on.cycles_macro,
        r_on.cycles
    );
    // Block-grant serving must carry a meaningful share of the fused
    // cycles on dense compute (the CI engagement floor asserts the same
    // property through `perf_smoke`, so the fast path cannot silently
    // rot into permanent fallback).
    // Block-grant serving must engage on dense compute — but its
    // structural boundary ("stop at the first cycle whose outcome
    // depends on an unresolved event") caps block length at the next
    // dispatch acceptance, and a streaming front-end accepts nearly
    // every cycle. So on gemm the planner fires, serves short blocks,
    // and the backoff ladder rightly keeps it from replanning every
    // other cycle; the strong engagement floors live in the
    // dispatch-quiet regimes below.
    assert!(
        r_on.blocks_built > 0 && r_on.cycles_block > 0,
        "no grant block ever engaged on gemm_blocked \
         (built {}, served {})",
        r_on.blocks_built,
        r_on.cycles_block
    );
}

#[test]
fn block_engine_dominates_dispatch_quiet_regimes() {
    // Where dispatch is stalled — draining dependence chains behind
    // long-latency loads — block validation holds for the block's whole
    // planned life, and the engine must carry the bulk of the fused
    // cycles. Floors are set with slack under measured engagement
    // (pointer_chase ~97% of fused cycles block-served, graph_bfs ~61%)
    // so the fast path cannot silently rot into permanent fallback.
    for (name, num, den) in [("pointer_chase", 3, 4), ("graph_bfs", 1, 2)] {
        let trace = workload(name, 5_000, 7);
        let (_, r, _) = run_normalized(
            MachineKind::OutOfOrder,
            Width::Eight,
            &trace,
            true,
            true,
            true,
        );
        assert!(
            r.blocks_built > 0,
            "no grant block was ever built on {name}"
        );
        assert!(
            r.cycles_block * den >= r.cycles_macro * num,
            "blocks served {} of {} fused cycles on {name}, \
             below the {num}/{den} engagement floor",
            r.cycles_block,
            r.cycles_macro
        );
    }
}

#[test]
fn blocks_truncate_at_unresolved_events() {
    // Property test of the planner's boundary rules, directly against a
    // scheduler: a block must end exactly where the first unresolved
    // event lands — an unissued producer's unknown completion (fill /
    // branch resolution in the pipeline) plans no wake at all, and an
    // MDP hold ends the plan before the wake cycle.
    use ballerino_isa::PhysReg;
    use ballerino_sched::{
        BlockHorizon, FuBusy, HeldSet, OooIq, OooIqConfig, PortAlloc, ReadyCtx, SchedUop,
        Scheduler, Scoreboard,
    };

    let mut iq = OooIq::new(OooIqConfig {
        entries: 16,
        oldest_first: false,
    });
    let mut scb = Scoreboard::new(16);
    let held = HeldSet::new();
    // Producer of r1 already issued, completing at cycle 6; r2's
    // producer has not issued, so its completion is unresolved.
    scb.allocate(PhysReg(1));
    scb.set_ready_at(PhysReg(1), 6);
    scb.allocate(PhysReg(2));
    let op = |seq: u64, src: Option<PhysReg>| SchedUop {
        srcs: [src, None],
        ..SchedUop::test_op(seq)
    };
    {
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        iq.try_dispatch(op(1, None), &ctx); // ready now
        iq.try_dispatch(op(2, Some(PhysReg(1))), &ctx); // wakes at 6
        iq.try_dispatch(op(3, Some(PhysReg(2))), &ctx); // unresolved
    }
    let busy = FuBusy::new();
    let ctx = ReadyCtx {
        cycle: 0,
        scb: &scb,
        held: &held,
    };
    let mut ports = PortAlloc::new(8, 8, &busy, 0);
    let horizon = BlockHorizon {
        cycles: 64,
        load_latency: 5,
    };
    let block = iq
        .macro_grant_block(&ctx, &mut ports, horizon)
        .expect("plannable fabric must yield a block");
    // The planned grants are exactly the resolvable ones: seq 1 at
    // cycle 0 and seq 2 at its wake cycle 6. Seq 3 is never granted —
    // its producer's completion is an unresolved event — but the block
    // still runs to the full horizon: the trailing cycles are a valid
    // zero-grant tail (the ready set stays empty, exactly as live
    // select would see it) that keeps the block alive until an
    // unplanned wake invalidates it.
    assert_eq!(block.grants, vec![(0, 1), (6, 2)]);
    assert!(block.start == 0 && block.end == 64, "{block:?}");

    // An MDP hold is harder: the plan must end *before* the cycle the
    // held μop would wake, because the wake would park it in the held
    // list (store-set release timing the plan cannot see).
    let mut iq = OooIq::new(OooIqConfig {
        entries: 16,
        oldest_first: false,
    });
    {
        let ctx = ReadyCtx {
            cycle: 0,
            scb: &scb,
            held: &held,
        };
        iq.try_dispatch(op(1, None), &ctx);
        iq.try_dispatch(
            SchedUop {
                mdp_wait: Some(99),
                ..op(2, Some(PhysReg(1)))
            },
            &ctx,
        );
    }
    let mut ports = PortAlloc::new(8, 8, &busy, 0);
    let block = iq
        .macro_grant_block(&ctx, &mut ports, horizon)
        .expect("the pre-wake prefix is still plannable");
    assert_eq!(block.grants, vec![(0, 1)]);
    assert_eq!(
        block.end, 6,
        "block must stop before the MDP-held wake at cycle 6"
    );
}
