//! Property tests for the shareable P-IQ: against a reference model of
//! two plain FIFOs, under arbitrary interleavings of pushes, pops,
//! sharing activations and flushes.

use ballerino_core::{PartId, Piq};
use ballerino_sched::SchedUop;
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
enum Op {
    Push(u8),
    Pop(u8),
    ActivateSharing,
    Flush(u64),
    EndCycle(Option<u8>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..2).prop_map(Op::Push),
        (0u8..2).prop_map(Op::Pop),
        Just(Op::ActivateSharing),
        (0u64..200).prop_map(Op::Flush),
        proptest::option::of(0u8..2).prop_map(Op::EndCycle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn piq_matches_reference_fifos(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let cap = 8usize;
        let mut piq = Piq::new(cap, false);
        let mut model: [VecDeque<u64>; 2] = [VecDeque::new(), VecDeque::new()];
        let mut shared = false;
        let mut seq = 0u64;

        for op in ops {
            match op {
                Op::Push(p) => {
                    let p = p as usize;
                    let part = PartId(p as u8);
                    // Model capacity: full cap in normal mode for part 0,
                    // half per partition in sharing mode.
                    let cap_p = if shared { cap / 2 } else if p == 0 { cap } else { 0 };
                    let fits = model[p].len() < cap_p;
                    prop_assert_eq!(piq.can_push(part), fits, "can_push mismatch");
                    if fits {
                        seq += 1;
                        piq.push(part, SchedUop::test_op(seq));
                        model[p].push_back(seq);
                    }
                }
                Op::Pop(p) => {
                    let p = p as usize;
                    let got = piq.pop(PartId(p as u8)).map(|u| u.seq);
                    let want = model[p].pop_front();
                    prop_assert_eq!(got, want, "pop mismatch");
                    if model[0].is_empty() && model[1].is_empty() {
                        shared = false;
                        let drained: VecDeque<u64> = VecDeque::new();
                        model = [drained.clone(), drained];
                    }
                }
                Op::ActivateSharing => {
                    if piq.shareable() {
                        let part = piq.activate_sharing();
                        prop_assert_eq!(part, PartId(1));
                        shared = true;
                    }
                }
                Op::Flush(s) => {
                    piq.flush_after(s);
                    for m in model.iter_mut() {
                        while m.back().map(|&x| x > s).unwrap_or(false) {
                            m.pop_back();
                        }
                    }
                    if model[0].is_empty() && model[1].is_empty() {
                        shared = false;
                    }
                }
                Op::EndCycle(p) => {
                    piq.end_cycle(p.map(PartId));
                }
            }
            // Global invariants.
            prop_assert_eq!(piq.len(), model[0].len() + model[1].len());
            prop_assert!(piq.len() <= cap);
            prop_assert_eq!(piq.is_shared(), shared);
            for p in 0..2usize {
                prop_assert_eq!(
                    piq.front(PartId(p as u8)).map(|u| u.seq),
                    model[p].front().copied()
                );
                prop_assert_eq!(
                    piq.back(PartId(p as u8)).map(|u| u.seq),
                    model[p].back().copied()
                );
            }
            // FIFO order within each partition.
            if !shared {
                let seqs: Vec<u64> = piq.iter().map(|u| u.seq).collect();
                let mut sorted = seqs.clone();
                sorted.sort_unstable();
                prop_assert_eq!(seqs, sorted, "normal mode must be age-ordered");
            }
        }
    }

    #[test]
    fn issue_candidates_always_point_at_occupied_or_sole_partition(
        pushes in proptest::collection::vec(0u8..2, 0..10)
    ) {
        let mut piq = Piq::new(8, false);
        let mut seq = 0;
        for p in pushes {
            if p == 1 && !piq.is_shared() && piq.shareable() {
                piq.activate_sharing();
            }
            let part = PartId(if piq.is_shared() { p } else { 0 });
            if piq.can_push(part) {
                seq += 1;
                piq.push(part, SchedUop::test_op(seq));
            }
        }
        let cands = piq.issue_candidates();
        prop_assert!(!cands.is_empty());
        prop_assert!(cands.len() <= 2);
    }
}
