//! The shareable P-IQ: a circular FIFO with an optional two-partition
//! sharing mode (§IV-D, Fig. 9).
//!
//! In **normal mode** the queue is one circular FIFO holding a single
//! dependence chain. When the steer logic finds no empty P-IQ it may
//! activate **sharing mode** on an eligible queue: the queue splits into
//! two equal halves operating as distinct FIFOs, each with its own head
//! and tail pointer. The paper's implementation constraints are modelled
//! exactly:
//!
//! * at most **two** partitions,
//! * a queue is eligible only when its head and tail pointers sit in the
//!   **same physical half** (so each logical partition maps to one
//!   physical half),
//! * only **one head pointer is active** per cycle; the active pointer
//!   stays after an issue (back-to-back) and toggles otherwise.
//!
//! The `ideal` flag lifts the second and third constraints (the Fig. 13
//! "w/o constraints" series).

use ballerino_sched::SchedUop;
use std::collections::VecDeque;

/// Identifies one of the two partitions of a P-IQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartId(pub u8);

/// The (at most two) partitions whose heads compete for issue this
/// cycle; a stack-allocated iterator so the per-cycle select path never
/// touches the heap.
#[derive(Debug, Clone, Copy)]
pub struct IssueCandidates {
    parts: [PartId; 2],
    len: u8,
    next: u8,
}

impl IssueCandidates {
    /// Number of candidate partitions (1 or 2).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len as usize
    }
}

impl Iterator for IssueCandidates {
    type Item = PartId;

    fn next(&mut self) -> Option<PartId> {
        if self.next < self.len {
            let p = self.parts[self.next as usize];
            self.next += 1;
            Some(p)
        } else {
            None
        }
    }
}

/// A P-IQ: single-chain circular FIFO, shareable into two partitions.
#[derive(Debug)]
pub struct Piq {
    cap: usize,
    parts: [VecDeque<SchedUop>; 2],
    shared: bool,
    active: usize,
    /// Physical index of each partition's front slot (pointer emulation
    /// for the same-half eligibility test).
    phys_heads: [usize; 2],
    ideal: bool,
}

impl Piq {
    /// Builds an empty P-IQ with `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics unless `cap` is even and at least 2.
    pub fn new(cap: usize, ideal: bool) -> Self {
        assert!(
            cap >= 2 && cap.is_multiple_of(2),
            "P-IQ capacity must be even and >= 2"
        );
        Piq {
            cap,
            parts: [VecDeque::new(), VecDeque::new()],
            shared: false,
            active: 0,
            phys_heads: [0, 0],
            ideal,
        }
    }

    /// Total entries across partitions.
    pub fn len(&self) -> usize {
        self.parts[0].len() + self.parts[1].len()
    }

    /// Whether the queue holds no μops.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Whether sharing mode is active.
    pub fn is_shared(&self) -> bool {
        self.shared
    }

    /// The partition whose head pointer is active this cycle (always 0 in
    /// normal mode).
    pub fn active_part(&self) -> PartId {
        PartId(self.active as u8)
    }

    fn half(&self) -> usize {
        self.cap / 2
    }

    fn part_cap(&self, p: usize) -> usize {
        if self.shared || p == 1 {
            self.half()
        } else {
            self.cap
        }
    }

    /// Whether partition `p` can accept another μop.
    pub fn can_push(&self, p: PartId) -> bool {
        let p = p.0 as usize;
        if p == 1 && !self.shared {
            return false;
        }
        self.parts[p].len() < self.part_cap(p)
    }

    /// Appends `uop` to partition `p`'s tail.
    ///
    /// # Panics
    ///
    /// Panics if the partition is full or (for partition 1) sharing is
    /// not active.
    pub fn push(&mut self, p: PartId, uop: SchedUop) {
        assert!(self.can_push(p), "push into unavailable partition {p:?}");
        self.parts[p.0 as usize].push_back(uop);
    }

    /// The μop at partition `p`'s head.
    pub fn front(&self, p: PartId) -> Option<&SchedUop> {
        self.parts[p.0 as usize].front()
    }

    /// The μop at partition `p`'s tail.
    pub fn back(&self, p: PartId) -> Option<&SchedUop> {
        self.parts[p.0 as usize].back()
    }

    /// Pops partition `p`'s head, advancing its physical pointer.
    pub fn pop(&mut self, p: PartId) -> Option<SchedUop> {
        let pi = p.0 as usize;
        let u = self.parts[pi].pop_front();
        if u.is_some() {
            if self.shared {
                let half = self.half();
                let base = (self.phys_heads[pi] / half) * half;
                self.phys_heads[pi] = base + (self.phys_heads[pi] - base + 1) % half;
            } else {
                self.phys_heads[0] = (self.phys_heads[0] + 1) % self.cap;
            }
            self.maybe_collapse();
        }
        u
    }

    /// Whether the same-half eligibility constraint holds (or `ideal`
    /// lifts it): the queue is non-empty, in normal mode, and its content
    /// fits one physical half.
    pub fn shareable(&self) -> bool {
        if self.shared || self.is_empty() {
            return false;
        }
        let len = self.parts[0].len();
        if len > self.half() {
            // More than half the entries are occupied: the content cannot
            // fit one physical half, whatever the pointers say. (This also
            // covers the full-and-wrapped case where the tail lands back
            // in the head's half.)
            return false;
        }
        if self.ideal {
            return true;
        }
        let head = self.phys_heads[0];
        let tail = (head + len - 1) % self.cap;
        let half = self.half();
        head / half == tail / half
    }

    /// Activates sharing mode; returns the new (empty) partition id.
    ///
    /// # Panics
    ///
    /// Panics if [`Piq::shareable`] is false.
    pub fn activate_sharing(&mut self) -> PartId {
        assert!(self.shareable(), "sharing activation on ineligible queue");
        let half = self.half();
        let head_half = if self.ideal {
            // Ideal mode ignores pointer locations; pretend content sits
            // in half 0.
            self.phys_heads[0] = 0;
            0
        } else {
            self.phys_heads[0] / half
        };
        self.shared = true;
        self.phys_heads[1] = (1 - head_half) * half;
        self.active = 0;
        PartId(1)
    }

    /// In sharing mode, a fully-drained partition may host a brand-new
    /// dependence chain; returns such a partition if one exists.
    pub fn empty_partition(&self) -> Option<PartId> {
        if !self.shared {
            return None;
        }
        (0..2)
            .find(|&p| self.parts[p].is_empty())
            .map(|p| PartId(p as u8))
    }

    /// Head candidates for issue this cycle: in normal mode the single
    /// head; in sharing mode the active partition's head (both heads when
    /// `ideal`). At most two, returned by value — this runs once per
    /// P-IQ per cycle, so it must not allocate.
    pub fn issue_candidates(&self) -> IssueCandidates {
        if !self.shared {
            return IssueCandidates {
                parts: [PartId(0), PartId(0)],
                len: 1,
                next: 0,
            };
        }
        if self.ideal {
            return IssueCandidates {
                parts: [PartId(0), PartId(1)],
                len: 2,
                next: 0,
            };
        }
        IssueCandidates {
            parts: [PartId(self.active as u8), PartId(0)],
            len: 1,
            next: 0,
        }
    }

    /// Heap-allocating variant of [`Piq::issue_candidates`] (the seed's
    /// original signature), kept for the frozen reference issue path in
    /// `ballerino-core`'s Ballerino scheduler.
    pub fn issue_candidates_vec(&self) -> Vec<PartId> {
        if !self.shared {
            return vec![PartId(0)];
        }
        if self.ideal {
            return vec![PartId(0), PartId(1)];
        }
        vec![PartId(self.active as u8)]
    }

    /// End-of-cycle head-pointer policy (§IV-D): keep the active pointer
    /// after an issue (enabling back-to-back), otherwise activate the
    /// other partition if it holds μops.
    pub fn end_cycle(&mut self, issued_from: Option<PartId>) {
        if !self.shared || self.ideal {
            return;
        }
        match issued_from {
            Some(p) if p.0 as usize == self.active => {}
            _ => {
                let other = 1 - self.active;
                if !self.parts[other].is_empty() {
                    self.active = other;
                }
            }
        }
    }

    /// Replays `k` issue-free [`Piq::end_cycle`] calls in one step: with
    /// both partitions occupied the active pointer alternates every
    /// cycle, and with only the other partition occupied it toggles once
    /// and then stays.
    pub fn end_idle_cycles(&mut self, k: u64) {
        if !self.shared || self.ideal || k == 0 {
            return;
        }
        let other = 1 - self.active;
        if self.parts[other].is_empty() {
            return;
        }
        if self.parts[self.active].is_empty() || k % 2 == 1 {
            self.active = other;
        }
    }

    /// Collapses back to normal mode when both partitions drain.
    fn maybe_collapse(&mut self) {
        if self.shared && self.parts[0].is_empty() && self.parts[1].is_empty() {
            self.shared = false;
            self.active = 0;
            // The pointer of an empty queue is arbitrary; keep partition
            // 0's last position so shareability behaves like hardware.
            self.phys_heads[0] %= self.cap;
        }
    }

    /// Removes all μops younger than `seq` from both partitions.
    pub fn flush_after(&mut self, seq: u64) {
        for p in &mut self.parts {
            while p.back().map(|u| u.seq > seq).unwrap_or(false) {
                p.pop_back();
            }
        }
        self.maybe_collapse();
    }

    /// Iterates over every resident μop (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &SchedUop> {
        self.parts[0].iter().chain(self.parts[1].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(seq: u64) -> SchedUop {
        SchedUop::test_op(seq)
    }

    #[test]
    fn normal_mode_is_fifo() {
        let mut q = Piq::new(8, false);
        q.push(PartId(0), u(1));
        q.push(PartId(0), u(2));
        assert_eq!(q.front(PartId(0)).unwrap().seq, 1);
        assert_eq!(q.pop(PartId(0)).unwrap().seq, 1);
        assert_eq!(q.pop(PartId(0)).unwrap().seq, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn fresh_queue_with_few_entries_is_shareable() {
        let mut q = Piq::new(8, false);
        q.push(PartId(0), u(1));
        q.push(PartId(0), u(2));
        assert!(q.shareable()); // head 0, tail 1: same half
    }

    #[test]
    fn queue_spanning_halves_is_not_shareable() {
        let mut q = Piq::new(8, false);
        for i in 0..5 {
            q.push(PartId(0), u(i)); // head 0, tail 4: crosses halves
        }
        assert!(!q.shareable());
        // Ideal mode ignores pointers but still needs content <= half.
        let mut qi = Piq::new(8, true);
        for i in 0..5 {
            qi.push(PartId(0), u(i));
        }
        assert!(!qi.shareable());
    }

    #[test]
    fn full_wrapped_queue_is_not_shareable() {
        // Regression (found by proptest): fill, pop one, refill so the
        // tail wraps back into the head's half; the queue is full and
        // must NOT be eligible for sharing.
        let mut q = Piq::new(8, false);
        for i in 0..7 {
            q.push(PartId(0), u(i));
        }
        q.pop(PartId(0)); // head = 1
        q.push(PartId(0), u(10));
        q.push(PartId(0), u(11)); // len = 8, tail wraps to slot 0
        assert_eq!(q.len(), 8);
        assert!(!q.shareable());
    }

    #[test]
    fn pointer_drift_affects_eligibility() {
        let mut q = Piq::new(8, false);
        // Advance head to 3 by pushing/popping.
        for i in 0..3 {
            q.push(PartId(0), u(i));
        }
        for _ in 0..3 {
            q.pop(PartId(0));
        }
        // Now head = 3; two entries occupy slots 3,4 → crosses halves.
        q.push(PartId(0), u(10));
        q.push(PartId(0), u(11));
        assert!(!q.shareable());
        // The same content at slots 0,1 would be shareable (checked above).
    }

    #[test]
    fn sharing_gives_independent_fifos() {
        let mut q = Piq::new(8, false);
        q.push(PartId(0), u(1));
        q.push(PartId(0), u(2));
        let p1 = q.activate_sharing();
        assert_eq!(p1, PartId(1));
        assert!(q.is_shared());
        q.push(p1, u(10));
        q.push(p1, u(11));
        assert_eq!(q.front(PartId(0)).unwrap().seq, 1);
        assert_eq!(q.front(PartId(1)).unwrap().seq, 10);
        assert_eq!(q.pop(PartId(1)).unwrap().seq, 10);
        assert_eq!(q.front(PartId(0)).unwrap().seq, 1, "partition 0 untouched");
    }

    #[test]
    fn partition_capacity_is_half() {
        let mut q = Piq::new(8, false);
        q.push(PartId(0), u(1));
        let p1 = q.activate_sharing();
        for i in 0..4 {
            assert!(q.can_push(p1));
            q.push(p1, u(10 + i));
        }
        assert!(
            !q.can_push(p1),
            "partition 1 holds at most half the entries"
        );
        // Partition 0 is also capped at half now.
        for i in 0..3 {
            q.push(PartId(0), u(2 + i));
        }
        assert!(!q.can_push(PartId(0)));
    }

    #[test]
    fn active_head_toggles_only_without_issue() {
        let mut q = Piq::new(8, false);
        q.push(PartId(0), u(1));
        let p1 = q.activate_sharing();
        q.push(p1, u(10));
        assert_eq!(q.active_part(), PartId(0));
        // Issued from active partition: pointer stays (back-to-back).
        q.end_cycle(Some(PartId(0)));
        assert_eq!(q.active_part(), PartId(0));
        // No issue: toggle to give the other chain a chance.
        q.end_cycle(None);
        assert_eq!(q.active_part(), PartId(1));
        q.end_cycle(None);
        assert_eq!(q.active_part(), PartId(0));
    }

    #[test]
    fn non_ideal_exposes_one_candidate_ideal_exposes_two() {
        let mut q = Piq::new(8, false);
        q.push(PartId(0), u(1));
        let p1 = q.activate_sharing();
        q.push(p1, u(10));
        assert_eq!(q.issue_candidates().len(), 1);

        let mut qi = Piq::new(8, true);
        qi.push(PartId(0), u(1));
        let p1 = qi.activate_sharing();
        qi.push(p1, u(10));
        assert_eq!(qi.issue_candidates().len(), 2);
    }

    #[test]
    fn draining_both_partitions_collapses_to_normal() {
        let mut q = Piq::new(8, false);
        q.push(PartId(0), u(1));
        let p1 = q.activate_sharing();
        q.push(p1, u(10));
        q.pop(PartId(0));
        assert!(q.is_shared(), "still shared with one occupied partition");
        assert_eq!(q.empty_partition(), Some(PartId(0)));
        q.pop(PartId(1));
        assert!(!q.is_shared());
        assert!(q.is_empty());
    }

    #[test]
    fn empty_partition_hosts_new_chain() {
        let mut q = Piq::new(8, false);
        q.push(PartId(0), u(1));
        let p1 = q.activate_sharing();
        q.push(p1, u(10));
        q.pop(p1);
        assert_eq!(q.empty_partition(), Some(p1));
        q.push(p1, u(20));
        assert_eq!(q.front(p1).unwrap().seq, 20);
    }

    #[test]
    fn flush_after_trims_both_partitions() {
        let mut q = Piq::new(8, false);
        q.push(PartId(0), u(1));
        q.push(PartId(0), u(5));
        let p1 = q.activate_sharing();
        q.push(p1, u(3));
        q.push(p1, u(7));
        q.flush_after(4);
        assert_eq!(q.len(), 2);
        assert_eq!(q.back(PartId(0)).unwrap().seq, 1);
        assert_eq!(q.back(PartId(1)).unwrap().seq, 3);
    }

    #[test]
    fn flush_that_empties_queue_collapses_sharing() {
        let mut q = Piq::new(8, false);
        q.push(PartId(0), u(1));
        let p1 = q.activate_sharing();
        q.push(p1, u(2));
        q.flush_after(0);
        assert!(!q.is_shared());
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "unavailable partition")]
    fn push_to_inactive_partition_panics() {
        let mut q = Piq::new(8, false);
        q.push(PartId(1), u(1));
    }

    #[test]
    #[should_panic(expected = "ineligible")]
    fn activating_on_empty_queue_panics() {
        let mut q = Piq::new(8, false);
        let _ = q.activate_sharing();
    }

    #[test]
    fn wrap_within_partition_half() {
        let mut q = Piq::new(8, false);
        q.push(PartId(0), u(1));
        let p1 = q.activate_sharing();
        // Fill, drain, refill partition 1 to exercise half-local wrap.
        for i in 0..4 {
            q.push(p1, u(10 + i));
        }
        for _ in 0..4 {
            q.pop(p1);
        }
        for i in 0..4 {
            q.push(p1, u(20 + i));
        }
        assert_eq!(q.front(p1).unwrap().seq, 20);
        assert_eq!(q.back(p1).unwrap().seq, 23);
    }
}
