//! The Ballerino scheduler (§IV): S-IQ speculative issue + P-SCB-driven
//! steering + MDA steering + P-IQ sharing, behind the common
//! [`Scheduler`] trait.

use crate::piq::{PartId, Piq};
use ballerino_isa::{PhysReg, MAX_PORTS};
use ballerino_sched::{
    DelayTable, DispatchOutcome, HeadState, HeadStateStats, IssueBreakdown, LocTable, PortAlloc,
    ReadyCtx, SchedEnergyEvents, SchedUop, Scheduler, StallReason, SteerEvent, SteerStats,
    WakeFabric, WakeState,
};
use std::collections::VecDeque;

/// Ballerino configuration (Table II plus the step toggles of Fig. 13).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BallerinoConfig {
    /// S-IQ entries (Table II: 8 at 8-wide — 2× the dispatch width).
    pub siq_entries: usize,
    /// S-IQ slots examined per cycle (the speculative scheduling window;
    /// equals the rename width: 4r4w).
    pub siq_window: usize,
    /// Number of clustered P-IQs (7 for Ballerino, 11 for Ballerino-12).
    pub num_piqs: usize,
    /// Entries per P-IQ (Table II: 12).
    pub piq_entries: usize,
    /// Step 2: steer M-dependent loads behind their producer stores.
    pub mda_steering: bool,
    /// LDT steering: place memory μops behind the P-IQ tail whose
    /// predicted ready cycle (from the tracked load-delay table) best
    /// matches their own, in place of store-set (MDA) steering.
    pub ldt_steering: bool,
    /// Step 3: allow two chains to share one P-IQ.
    pub piq_sharing: bool,
    /// Fig. 13 "w/o constraints": lift the same-half and single-active-
    /// head constraints.
    pub ideal_sharing: bool,
    /// Physical registers tracked by the P-SCB.
    pub num_phys_regs: usize,
    /// Store-set ids tracked by the LFST steering extension.
    pub num_ssids: usize,
    /// How many cycles ahead a source may become ready while its consumer
    /// is allowed to linger in the S-IQ instead of being steered
    /// (captures the intra-group enable logic of Fig. 8: consumers of
    /// just-issued single-cycle producers issue back-to-back from the
    /// S-IQ).
    pub spec_horizon: u64,
}

impl Default for BallerinoConfig {
    fn default() -> Self {
        Self::eight_wide()
    }
}

impl BallerinoConfig {
    /// Ballerino at 8-wide: 8-entry S-IQ + 7×12-entry P-IQs (Table II).
    pub fn eight_wide() -> Self {
        BallerinoConfig {
            siq_entries: 8,
            siq_window: 4,
            num_piqs: 7,
            piq_entries: 12,
            mda_steering: true,
            ldt_steering: false,
            piq_sharing: true,
            ideal_sharing: false,
            num_phys_regs: 348,
            num_ssids: 128,
            spec_horizon: 1,
        }
    }

    /// Ballerino-12: 1 S-IQ + 11 P-IQs (§VI-A).
    pub fn twelve() -> Self {
        BallerinoConfig {
            num_piqs: 11,
            ..Self::eight_wide()
        }
    }

    /// Step 1 of Fig. 13: S-IQ + 7 P-IQs, no MDA steering, no sharing.
    pub fn step1() -> Self {
        BallerinoConfig {
            mda_steering: false,
            piq_sharing: false,
            ..Self::eight_wide()
        }
    }

    /// Step 2 of Fig. 13: Step 1 + MDA steering.
    pub fn step2() -> Self {
        BallerinoConfig {
            piq_sharing: false,
            ..Self::eight_wide()
        }
    }

    /// Ballerino-LDT: store-set steering replaced by tracked-load-delay
    /// steering (the LDT extension kind; see `ballerino_sched::ldt`).
    pub fn ldt() -> Self {
        BallerinoConfig {
            mda_steering: false,
            ldt_steering: true,
            ..Self::eight_wide()
        }
    }

    /// Step 3 without implementation constraints (ideal, Fig. 13).
    pub fn step3_ideal() -> Self {
        BallerinoConfig {
            ideal_sharing: true,
            ..Self::eight_wide()
        }
    }

    /// 4-wide variant (Table II: 8-entry S-IQ, 3×16-entry P-IQs).
    pub fn four_wide() -> Self {
        BallerinoConfig {
            siq_entries: 8,
            siq_window: 4,
            num_piqs: 3,
            piq_entries: 16,
            ..Self::eight_wide()
        }
    }

    /// 2-wide variant (Table II: 4-entry S-IQ, 1×16-entry P-IQ).
    pub fn two_wide() -> Self {
        BallerinoConfig {
            siq_entries: 4,
            siq_window: 2,
            num_piqs: 1,
            piq_entries: 16,
            ..Self::eight_wide()
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct LfstSteer {
    piq: u16,
    part: u8,
    reserved: bool,
    store_seq: u64,
}

/// Location encoding stored in the P-SCB: P-IQ index × partition.
fn encode_loc(piq: usize, part: PartId) -> u16 {
    (piq as u16) * 2 + part.0 as u16
}

fn decode_loc(loc: u16) -> (usize, PartId) {
    ((loc / 2) as usize, PartId((loc % 2) as u8))
}

/// Initial load-delay estimate before any observation (LDT mode;
/// matches `ballerino_sched::ldt`).
const INITIAL_TRACKED_DELAY: u64 = 4;

/// Per-cycle shape of an idle S-IQ window walk (see
/// `Ballerino::idle_window_shape`).
struct IdleWindow {
    /// Entries that linger in the window (examined, no steer).
    lingerers: usize,
    /// Whether a failed-steer blocker terminates the walk.
    blocker: bool,
    /// First cycle at which the walk's shape changes.
    horizon: u64,
}

/// The Ballerino scheduler.
#[derive(Debug)]
pub struct Ballerino {
    cfg: BallerinoConfig,
    siq: VecDeque<SchedUop>,
    piqs: Vec<Piq>,
    /// P-SCB producer-location extension.
    loc: LocTable,
    lfst_steer: Vec<Option<LfstSteer>>,
    /// Predicted-ready-cycle table for LDT steering (only mutated when
    /// `cfg.ldt_steering`; its access counters fold into the P-SCB's).
    dt: DelayTable,
    /// Running load-delay estimate (LDT mode).
    tracked_delay: u64,
    /// Issued loads awaiting delay observation (LDT mode).
    inflight: VecDeque<(PhysReg, u64)>,
    energy: SchedEnergyEvents,
    steer: SteerStats,
    heads: HeadStateStats,
    breakdown: IssueBreakdown,
    /// Sharing-mode activations (diagnostics / Fig. 13 analysis).
    pub sharing_activations: u64,
    /// Producer-indexed wakeup lists + ready state. A μop's fabric entry
    /// is keyed by seq, so it survives the S-IQ → P-IQ steering moves.
    fabric: WakeFabric,
    name: String,
    reference_issue: bool,
}

impl Ballerino {
    /// Builds an empty Ballerino scheduler.
    pub fn new(cfg: BallerinoConfig) -> Self {
        let piqs = (0..cfg.num_piqs)
            .map(|_| Piq::new(cfg.piq_entries, cfg.ideal_sharing))
            .collect();
        let loc = LocTable::new(cfg.num_phys_regs);
        let lfst_steer = vec![None; cfg.num_ssids];
        let dt = DelayTable::new(cfg.num_phys_regs);
        let mut name = format!("ballerino-{}", cfg.num_piqs + 1);
        if cfg.ldt_steering {
            name.push_str("-ldt");
        } else if !cfg.mda_steering {
            name.push_str("-step1");
        } else if !cfg.piq_sharing {
            name.push_str("-step2");
        } else if cfg.ideal_sharing {
            name.push_str("-ideal");
        }
        Ballerino {
            cfg,
            piqs,
            siq: VecDeque::new(),
            loc,
            lfst_steer,
            dt,
            tracked_delay: INITIAL_TRACKED_DELAY,
            inflight: VecDeque::new(),
            energy: SchedEnergyEvents::default(),
            steer: SteerStats::default(),
            heads: HeadStateStats::default(),
            breakdown: IssueBreakdown::default(),
            sharing_activations: 0,
            fabric: WakeFabric::new(),
            name,
            reference_issue: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BallerinoConfig {
        &self.cfg
    }

    /// Current S-IQ occupancy (tests/diagnostics).
    pub fn siq_len(&self) -> usize {
        self.siq.len()
    }

    /// Occupancy of P-IQ `i` (tests/diagnostics).
    pub fn piq_len(&self, i: usize) -> usize {
        self.piqs[i].len()
    }

    /// Whether P-IQ `i` is in sharing mode.
    pub fn piq_shared(&self, i: usize) -> bool {
        self.piqs[i].is_shared()
    }

    fn push_tracked(&mut self, piq: usize, part: PartId, uop: SchedUop) {
        if let Some(d) = uop.dst {
            self.loc.set_location(d, encode_loc(piq, part));
        }
        if self.cfg.mda_steering && uop.is_store() {
            if let Some(ssid) = uop.ssid {
                self.lfst_steer[ssid.0 as usize] = Some(LfstSteer {
                    piq: piq as u16,
                    part: part.0,
                    reserved: false,
                    store_seq: uop.seq,
                });
                self.energy.loc_writes += 1;
            }
        }
        self.energy.queue_writes += 1;
        self.piqs[piq].push(part, uop);
    }

    /// LDT steering target: the partition whose tail's predicted ready
    /// cycle is the latest one not exceeding the μop's own prediction —
    /// the memory μop queues behind work that should finish no later
    /// than its operands arrive. Replaces store-set (MDA) steering in
    /// LDT mode; only memory μops are considered, mirroring MDA's
    /// applicability.
    ///
    /// Only tails *older* than the μop qualify: dependence-based steering
    /// (MDA, P-SCB) keeps every partition age-sorted for free because
    /// producers precede consumers, and forward progress leans on that —
    /// an unordered FIFO lets the globally oldest unissued μop sit behind
    /// younger entries whose producers wait behind it in another queue
    /// (a cross-queue dependence cycle that live-locks the machine).
    fn ldt_target(&mut self, uop: &SchedUop) -> Option<(usize, PartId)> {
        if !self.cfg.ldt_steering || !(uop.is_load() || uop.is_store()) {
            return None;
        }
        let mut pred = 0u64;
        for src in uop.srcs.iter().flatten() {
            pred = pred.max(self.dt.predicted_ready(*src));
        }
        let mut best: Option<(u64, usize, PartId)> = None;
        for (k, q) in self.piqs.iter().enumerate() {
            for part in [PartId(0), PartId(1)] {
                if !q.can_push(part) {
                    continue;
                }
                let Some(tail) = q.back(part) else { continue };
                if tail.seq >= uop.seq {
                    continue;
                }
                let Some(d) = tail.dst else { continue };
                let tp = self.dt.peek(d);
                if tp == 0 || tp > pred {
                    continue;
                }
                // Strict improvement only: first-come wins ties, so the
                // lowest (queue, partition) pair is deterministic.
                if best.map(|(bt, _, _)| tp > bt).unwrap_or(true) {
                    best = Some((tp, k, part));
                }
            }
        }
        best.map(|(_, k, p)| (k, p))
    }

    /// Read-only replica of a successful `ldt_target`.
    fn ldt_would_target(&self, uop: &SchedUop) -> bool {
        if !self.cfg.ldt_steering || !(uop.is_load() || uop.is_store()) {
            return false;
        }
        let mut pred = 0u64;
        for src in uop.srcs.iter().flatten() {
            pred = pred.max(self.dt.peek(*src));
        }
        self.piqs.iter().any(|q| {
            [PartId(0), PartId(1)].into_iter().any(|part| {
                q.can_push(part)
                    && q.back(part)
                        .filter(|tail| tail.seq < uop.seq)
                        .and_then(|tail| tail.dst)
                        .map(|d| {
                            let tp = self.dt.peek(d);
                            tp != 0 && tp <= pred
                        })
                        .unwrap_or(false)
            })
        })
    }

    /// Queues a just-issued load for delay observation (LDT mode).
    fn note_ldt_issue(&mut self, u: &SchedUop, cycle: u64) {
        if self.cfg.ldt_steering && u.is_load() {
            if let Some(d) = u.dst {
                self.inflight.push_back((d, cycle));
            }
        }
    }

    /// Folds completed load observations into the running delay
    /// estimate (LDT mode; see `ballerino_sched::ldt`). The scoreboard
    /// publishes a load's completion cycle the same cycle it issues, so
    /// the queue fully drains at the next scheduler activity.
    fn observe_loads(&mut self, ctx: &ReadyCtx<'_>) {
        while let Some(&(dst, issued_at)) = self.inflight.front() {
            self.inflight.pop_front();
            let rc = ctx.scb.ready_cycle(dst);
            if rc == u64::MAX {
                continue; // reallocated before observation; no sample
            }
            let observed = rc.saturating_sub(issued_at);
            self.tracked_delay = ((3 * self.tracked_delay + observed) / 4).max(1);
            self.energy.loc_writes += 1; // delay-estimate register update
        }
    }

    /// Current load-delay estimate (LDT mode; tests/diagnostics).
    pub fn tracked_delay(&self) -> u64 {
        self.tracked_delay
    }

    /// MDA steering target (§III-B): the partition whose tail is the
    /// μop's predicted producer store.
    fn mda_target(&mut self, uop: &SchedUop) -> Option<(usize, PartId)> {
        if !self.cfg.mda_steering || !(uop.is_load() || uop.is_store()) {
            return None;
        }
        let ssid = uop.ssid?;
        let e = self.lfst_steer[ssid.0 as usize]?;
        self.energy.loc_reads += 1;
        if e.reserved {
            return None;
        }
        let (k, part) = (e.piq as usize, PartId(e.part));
        let at_tail = self.piqs[k]
            .back(part)
            .map(|b| b.seq == e.store_seq)
            .unwrap_or(false);
        if at_tail && self.piqs[k].can_push(part) {
            self.lfst_steer[ssid.0 as usize]
                .as_mut()
                .expect("checked")
                .reserved = true;
            self.energy.loc_writes += 1;
            Some((k, part))
        } else {
            None
        }
    }

    /// R-dependence steering target: the partition holding a producer at
    /// its tail; with two candidates the younger producer's chain wins.
    fn rdep_target(&mut self, uop: &SchedUop) -> Option<(usize, PartId, PhysReg)> {
        let mut best: Option<(usize, PartId, PhysReg, u64)> = None;
        for src in uop.srcs.iter().flatten() {
            let e = self.loc.get(*src);
            let Some(enc) = e.iq_index else { continue };
            if e.reserved {
                continue;
            }
            let (k, part) = decode_loc(enc);
            if !self.piqs[k].can_push(part) {
                continue;
            }
            // The producer must still be resident at that tail.
            let tail_seq = match self.piqs[k].back(part) {
                Some(b) => b.seq,
                None => continue,
            };
            if best.map(|(_, _, _, s)| tail_seq > s).unwrap_or(true) {
                best = Some((k, part, *src, tail_seq));
            }
        }
        best.map(|(k, p, src, _)| (k, p, src))
    }

    /// Allocation target for a new dependence head: an empty P-IQ, an
    /// empty partition of a shared P-IQ, or (Step 3) a freshly shared
    /// partition of an eligible P-IQ.
    fn alloc_target(&mut self) -> Option<(usize, PartId)> {
        if let Some(k) = self
            .piqs
            .iter()
            .position(|q| q.is_empty() && !q.is_shared())
        {
            return Some((k, PartId(0)));
        }
        for (k, q) in self.piqs.iter().enumerate() {
            if let Some(p) = q.empty_partition() {
                return Some((k, p));
            }
        }
        if self.cfg.piq_sharing {
            if let Some(k) = self.piqs.iter().position(|q| q.shareable()) {
                let p = self.piqs[k].activate_sharing();
                self.sharing_activations += 1;
                return Some((k, p));
            }
        }
        None
    }

    /// Steers one non-ready μop out of the S-IQ window. Returns whether a
    /// P-IQ accepted it.
    fn steer(&mut self, uop: &SchedUop) -> bool {
        self.energy.steer_ops += 1;
        if let Some((k, part)) = self.ldt_target(uop) {
            self.steer.record(SteerEvent::SteerDc);
            self.push_tracked(k, part, *uop);
            return true;
        }
        if let Some((k, part)) = self.mda_target(uop) {
            self.steer.record(SteerEvent::SteerDc);
            self.push_tracked(k, part, *uop);
            return true;
        }
        if let Some((k, part, src)) = self.rdep_target(uop) {
            self.loc.reserve(src);
            self.steer.record(SteerEvent::SteerDc);
            self.push_tracked(k, part, *uop);
            return true;
        }
        if let Some((k, part)) = self.alloc_target() {
            let shared = self.piqs[k].is_shared();
            self.steer.record(if shared {
                SteerEvent::SteerShared
            } else {
                SteerEvent::AllocNonReady
            });
            self.push_tracked(k, part, *uop);
            return true;
        }
        false
    }

    /// Read-only replica of `mda_target`'s table-read charge condition:
    /// the LFST-steer read is only counted once an entry is present.
    fn mda_probe_charges(&self, uop: &SchedUop) -> bool {
        self.cfg.mda_steering
            && (uop.is_load() || uop.is_store())
            && uop
                .ssid
                .map(|s| self.lfst_steer[s.0 as usize].is_some())
                .unwrap_or(false)
    }

    /// Read-only replica of a successful `mda_target`.
    fn mda_would_target(&self, uop: &SchedUop) -> bool {
        if !self.cfg.mda_steering || !(uop.is_load() || uop.is_store()) {
            return false;
        }
        let Some(ssid) = uop.ssid else { return false };
        let Some(e) = self.lfst_steer[ssid.0 as usize] else {
            return false;
        };
        if e.reserved {
            return false;
        }
        let (k, part) = (e.piq as usize, PartId(e.part));
        self.piqs[k]
            .back(part)
            .map(|b| b.seq == e.store_seq)
            .unwrap_or(false)
            && self.piqs[k].can_push(part)
    }

    /// Read-only replica of a successful `rdep_target`.
    fn rdep_would_target(&self, uop: &SchedUop) -> bool {
        for src in uop.srcs.iter().flatten() {
            let e = self.loc.peek(*src);
            let Some(enc) = e.iq_index else { continue };
            if e.reserved {
                continue;
            }
            let (k, part) = decode_loc(enc);
            if self.piqs[k].can_push(part) && self.piqs[k].back(part).is_some() {
                return true;
            }
        }
        false
    }

    /// Read-only replica of a successful `alloc_target` (including a
    /// Step-3 sharing activation).
    fn alloc_would_target(&self) -> bool {
        self.piqs
            .iter()
            .any(|q| (q.is_empty() && !q.is_shared()) || q.empty_partition().is_some())
            || (self.cfg.piq_sharing && self.piqs.iter().any(|q| q.shareable()))
    }

    /// Whether `steer` would move `uop` into a P-IQ, without mutating
    /// any steering state.
    fn would_steer(&self, uop: &SchedUop) -> bool {
        self.ldt_would_target(uop)
            || self.mda_would_target(uop)
            || self.rdep_would_target(uop)
            || self.alloc_would_target()
    }

    /// Walks the S-IQ window exactly as an issue-free `issue` call would,
    /// without mutating anything. Returns `None` when the walk is not
    /// idle (an entry would issue, fight for a port, or be steered), else
    /// the walk's per-cycle shape: how many entries linger, whether a
    /// failed-steer blocker terminates the walk, and the first cycle at
    /// which the shape itself changes.
    fn idle_window_shape(&self, ctx: &ReadyCtx<'_>) -> Option<IdleWindow> {
        let window = self.cfg.siq_window.min(self.siq.len());
        if window > 16 {
            return None; // conservative: fixed lingering buffer below
        }
        let mut lingering = [PhysReg(0); 16];
        let mut n_linger = 0usize;
        let mut horizon = u64::MAX;
        let mut lingerers = 0usize;
        for i in 0..window {
            let u = &self.siq[i];
            if ctx.is_ready(u) {
                return None; // would issue or contend for a port now
            }
            let held = ctx.held.contains(u.seq);
            if !held {
                let mut far_rc_max = 0u64;
                let mut far = false;
                for s in u.srcs.iter().flatten() {
                    let rc = ctx.scb.ready_cycle(*s);
                    if rc > ctx.cycle + self.cfg.spec_horizon && !lingering[..n_linger].contains(s)
                    {
                        far = true;
                        far_rc_max = far_rc_max.max(rc);
                    }
                }
                if !far {
                    // Lingers for back-to-back issue; wakes (and issues)
                    // once every source is ready.
                    let rc = ctx.scb.srcs_ready_cycle(&u.srcs);
                    if rc != u64::MAX {
                        horizon = horizon.min(rc);
                    }
                    if let Some(d) = u.dst {
                        lingering[n_linger] = d;
                        n_linger += 1;
                    }
                    lingerers += 1;
                    continue;
                }
                // Far blocker: it starts lingering (changing the walk
                // shape) once its farthest source slides inside the
                // speculation horizon.
                if far_rc_max != u64::MAX {
                    horizon = horizon.min(far_rc_max - self.cfg.spec_horizon);
                }
            }
            if self.would_steer(u) {
                return None; // steering would move it to a P-IQ
            }
            return Some(IdleWindow {
                lingerers,
                blocker: true,
                horizon,
            });
        }
        Some(IdleWindow {
            lingerers,
            blocker: false,
            horizon,
        })
    }

    fn release_store_lfst(&mut self, u: &SchedUop) {
        if self.cfg.mda_steering && u.is_store() {
            if let Some(ssid) = u.ssid {
                if let Some(e) = self.lfst_steer[ssid.0 as usize] {
                    if e.store_seq == u.seq {
                        self.lfst_steer[ssid.0 as usize] = None;
                    }
                }
            }
        }
    }
}

impl Ballerino {
    /// Switches to the seed's per-cycle-allocating issue path (identical
    /// grant decisions); kept for the `perf_smoke` reference baseline.
    pub fn with_reference_issue(mut self) -> Self {
        self.reference_issue = true;
        self
    }

    /// The seed's issue path, frozen verbatim for the `perf_smoke`
    /// reference baseline: allocates its tracking buffers every cycle
    /// and asks each P-IQ for a heap-allocated candidate list. Grant
    /// decisions are identical to [`Scheduler::issue`].
    fn issue_reference(
        &mut self,
        ctx: &ReadyCtx<'_>,
        ports: &mut PortAlloc<'_>,
        out: &mut Vec<u64>,
    ) {
        // Destinations of single-cycle μops issued *this very cycle*: the
        // scoreboard is only updated by the pipeline after this call, so
        // the intra-group enable logic (Fig. 8) must track them here to
        // keep their consumers in the S-IQ for back-to-back issue.
        let mut just_issued: Vec<PhysReg> = Vec::new();
        let note_issue = |u: &SchedUop, v: &mut Vec<PhysReg>| {
            if !u.is_load() && u.class.exec_latency() as u64 <= 1 {
                if let Some(d) = u.dst {
                    v.push(d);
                }
            }
        };

        // ---- 1. P-IQ heads: highest select priority (prefix-sum order,
        //         §IV-E), examined via the active head pointer(s).
        let mut any_candidate = false;
        for k in 0..self.piqs.len() {
            let mut issued_part: Option<PartId> = None;
            let mut recorded = false;
            for part in self.piqs[k].issue_candidates_vec() {
                let state = match self.piqs[k].front(part) {
                    None => HeadState::Empty,
                    Some(head) => {
                        self.energy.head_examinations += 1;
                        if ctx.is_ready(head) {
                            any_candidate = true;
                            if ports.try_claim(head.port, head.class) {
                                HeadState::Issuing
                            } else {
                                HeadState::StallPortConflict
                            }
                        } else if ctx.is_mdp_blocked(head) {
                            HeadState::StallMdepLoad
                        } else {
                            HeadState::StallNonReady
                        }
                    }
                };
                if !recorded {
                    // One observation per queue per cycle.
                    self.heads.record(state);
                    recorded = true;
                }
                if state == HeadState::Issuing {
                    let u = self.piqs[k].pop(part).expect("head present");
                    self.fabric.remove(u.seq);
                    self.energy.queue_reads += 1;
                    self.breakdown.from_piq += 1;
                    self.release_store_lfst(&u);
                    self.note_ldt_issue(&u, ctx.cycle);
                    note_issue(&u, &mut just_issued);
                    out.push(u.seq);
                    issued_part = Some(part);
                }
            }
            self.piqs[k].end_cycle(issued_part);
        }

        // ---- 2. S-IQ speculative scheduling window: ready μops issue,
        //         far-from-ready μops are steered to the P-IQs.
        let window = self.cfg.siq_window.min(self.siq.len());
        let mut remove: Vec<usize> = Vec::new();
        let mut lingering: Vec<PhysReg> = Vec::new();
        for i in 0..window {
            let u = self.siq[i];
            self.energy.head_examinations += 1;
            if ctx.is_ready(&u) {
                any_candidate = true;
                if ports.try_claim(u.port, u.class) {
                    self.fabric.remove(u.seq);
                    self.energy.queue_reads += 1;
                    self.breakdown.from_siq += 1;
                    self.steer.record(SteerEvent::SpeculativeIssue);
                    self.release_store_lfst(&u);
                    self.note_ldt_issue(&u, ctx.cycle);
                    note_issue(&u, &mut just_issued);
                    out.push(u.seq);
                    remove.push(i);
                } else {
                    // Ready but port-denied (§IV-C case 3): steer to a new
                    // P-IQ head; re-examined there next cycle.
                    self.energy.steer_ops += 1;
                    if let Some((k, part)) = self.alloc_target() {
                        let shared = self.piqs[k].is_shared();
                        self.steer.record(if shared {
                            SteerEvent::SteerShared
                        } else {
                            SteerEvent::AllocReady
                        });
                        self.push_tracked(k, part, u);
                        remove.push(i);
                    }
                    // No free queue: it simply stays in the S-IQ.
                }
                continue;
            }
            // Held loads must move to the P-IQs (ideally behind their
            // producer store via MDA steering).
            let held = ctx.held.contains(u.seq);
            if !held {
                // Soon-ready consumers linger for back-to-back issue; a
                // source counts as soon-ready when its producer issued
                // within this very cycle with single-cycle latency, or
                // when the producer itself lingers in the window (the
                // intra-group dependence analysis of Fig. 8 keeps whole
                // soon-ready chains in the S-IQ).
                let far = u.srcs.iter().flatten().any(|s| {
                    let rc = ctx.scb.ready_cycle(*s);
                    rc > ctx.cycle + self.cfg.spec_horizon
                        && !just_issued.contains(s)
                        && !lingering.contains(s)
                });
                if !far {
                    if let Some(d) = u.dst {
                        lingering.push(d);
                    }
                    continue;
                }
            }
            if self.steer(&u) {
                remove.push(i);
            } else {
                // Steering stall: the window cannot advance past this μop.
                self.steer.record(SteerEvent::StallNonReady);
                break;
            }
        }
        for &i in remove.iter().rev() {
            self.siq.remove(i);
        }

        if any_candidate {
            // Each port's prefix-sum sees P-IQ head requests above S-IQ
            // slot requests (§IV-E).
            let inputs = self.cfg.num_piqs + self.cfg.siq_window;
            self.energy.select_inputs += inputs as u64;
        }
    }
}

impl Scheduler for Ballerino {
    fn name(&self) -> &str {
        &self.name
    }

    fn try_dispatch(&mut self, uop: SchedUop, ctx: &ReadyCtx<'_>) -> DispatchOutcome {
        if self.siq.len() >= self.cfg.siq_entries {
            return DispatchOutcome::Stall(StallReason::Full);
        }
        if self.cfg.ldt_steering {
            // Annotate the dependence chain with predicted ready cycles
            // (after the full-check: refused dispatches touch nothing,
            // which the quiesce replay relies on).
            let mut pred = ctx.cycle;
            for src in uop.srcs.iter().flatten() {
                pred = pred.max(self.dt.predicted_ready(*src));
            }
            if let Some(d) = uop.dst {
                let lat = if uop.is_load() {
                    self.tracked_delay
                } else {
                    uop.class.exec_latency() as u64
                };
                self.dt.set_predicted(d, pred + lat);
            }
        }
        self.energy.queue_writes += 1;
        self.fabric.insert(&uop, 0, ctx);
        self.siq.push_back(uop);
        DispatchOutcome::Accepted
    }

    fn issue(&mut self, ctx: &ReadyCtx<'_>, ports: &mut PortAlloc<'_>, out: &mut Vec<u64>) {
        if self.cfg.ldt_steering {
            self.observe_loads(ctx);
        }
        if self.reference_issue {
            return self.issue_reference(ctx, ports, out);
        }
        self.fabric.poll(ctx);
        // Destinations of single-cycle μops issued *this very cycle*: the
        // scoreboard is only updated by the pipeline after this call, so
        // the intra-group enable logic (Fig. 8) must track them here to
        // keep their consumers in the S-IQ for back-to-back issue. Issues
        // are port claims, so MAX_PORTS bounds them per cycle.
        let mut just_issued = [PhysReg(0); MAX_PORTS];
        let mut n_issued = 0usize;
        fn note_issue(u: &SchedUop, v: &mut [PhysReg; MAX_PORTS], n: &mut usize) {
            if !u.is_load() && u.class.exec_latency() as u64 <= 1 {
                if let Some(d) = u.dst {
                    v[*n] = d;
                    *n += 1;
                }
            }
        }

        // ---- 1. P-IQ heads: highest select priority (prefix-sum order,
        //         §IV-E), examined via the active head pointer(s). The
        //         fabric's per-entry state replaces the per-head operand
        //         scan: Ready/Held/Waiting map onto the head-state taxonomy.
        let mut any_candidate = false;
        for k in 0..self.piqs.len() {
            let mut issued_part: Option<PartId> = None;
            let mut recorded = false;
            for part in self.piqs[k].issue_candidates() {
                let state = match self.piqs[k].front(part) {
                    None => HeadState::Empty,
                    Some(head) => {
                        self.energy.head_examinations += 1;
                        match self.fabric.state(head.seq) {
                            WakeState::Ready => {
                                any_candidate = true;
                                if ports.try_claim(head.port, head.class) {
                                    HeadState::Issuing
                                } else {
                                    HeadState::StallPortConflict
                                }
                            }
                            WakeState::Held => HeadState::StallMdepLoad,
                            WakeState::Waiting => HeadState::StallNonReady,
                        }
                    }
                };
                if !recorded {
                    // One observation per queue per cycle.
                    self.heads.record(state);
                    recorded = true;
                }
                if state == HeadState::Issuing {
                    let u = self.piqs[k].pop(part).expect("head present");
                    self.fabric.remove(u.seq);
                    self.energy.queue_reads += 1;
                    self.breakdown.from_piq += 1;
                    self.release_store_lfst(&u);
                    self.note_ldt_issue(&u, ctx.cycle);
                    note_issue(&u, &mut just_issued, &mut n_issued);
                    out.push(u.seq);
                    issued_part = Some(part);
                }
            }
            self.piqs[k].end_cycle(issued_part);
        }

        // ---- 2. S-IQ speculative scheduling window: ready μops issue,
        //         far-from-ready μops are steered to the P-IQs.
        let window = self.cfg.siq_window.min(self.siq.len());
        debug_assert!(
            window <= 32,
            "S-IQ window wider than the fixed issue buffers"
        );
        let mut remove_mask = 0u32;
        let mut lingering = [PhysReg(0); 32];
        let mut n_linger = 0usize;
        for i in 0..window {
            let u = self.siq[i];
            self.energy.head_examinations += 1;
            if self.fabric.state(u.seq) == WakeState::Ready {
                any_candidate = true;
                if ports.try_claim(u.port, u.class) {
                    self.fabric.remove(u.seq);
                    self.energy.queue_reads += 1;
                    self.breakdown.from_siq += 1;
                    self.steer.record(SteerEvent::SpeculativeIssue);
                    self.release_store_lfst(&u);
                    self.note_ldt_issue(&u, ctx.cycle);
                    note_issue(&u, &mut just_issued, &mut n_issued);
                    out.push(u.seq);
                    remove_mask |= 1 << i;
                } else {
                    // Ready but port-denied (§IV-C case 3): steer to a new
                    // P-IQ head; re-examined there next cycle. Its fabric
                    // entry follows the seq, untouched.
                    self.energy.steer_ops += 1;
                    if let Some((k, part)) = self.alloc_target() {
                        let shared = self.piqs[k].is_shared();
                        self.steer.record(if shared {
                            SteerEvent::SteerShared
                        } else {
                            SteerEvent::AllocReady
                        });
                        self.push_tracked(k, part, u);
                        remove_mask |= 1 << i;
                    }
                    // No free queue: it simply stays in the S-IQ.
                }
                continue;
            }
            // Held loads must move to the P-IQs (ideally behind their
            // producer store via MDA steering).
            let held = ctx.held.contains(u.seq);
            if !held {
                // Soon-ready consumers linger for back-to-back issue; a
                // source counts as soon-ready when its producer issued
                // within this very cycle with single-cycle latency, or
                // when the producer itself lingers in the window (the
                // intra-group dependence analysis of Fig. 8 keeps whole
                // soon-ready chains in the S-IQ).
                let far = u.srcs.iter().flatten().any(|s| {
                    let rc = ctx.scb.ready_cycle(*s);
                    rc > ctx.cycle + self.cfg.spec_horizon
                        && !just_issued[..n_issued].contains(s)
                        && !lingering[..n_linger].contains(s)
                });
                if !far {
                    if let Some(d) = u.dst {
                        lingering[n_linger] = d;
                        n_linger += 1;
                    }
                    continue;
                }
            }
            if self.steer(&u) {
                remove_mask |= 1 << i;
            } else {
                // Steering stall: the window cannot advance past this μop.
                self.steer.record(SteerEvent::StallNonReady);
                break;
            }
        }
        for i in (0..window).rev() {
            if remove_mask & (1 << i) != 0 {
                self.siq.remove(i);
            }
        }

        if any_candidate {
            // Each port's prefix-sum sees P-IQ head requests above S-IQ
            // slot requests (§IV-E).
            let inputs = self.cfg.num_piqs + self.cfg.siq_window;
            self.energy.select_inputs += inputs as u64;
        }
    }

    fn on_complete(&mut self, dst: PhysReg) {
        self.loc.clear(dst);
        if self.cfg.ldt_steering {
            // The value exists: its delay prediction is spent.
            self.dt.clear(dst);
        }
        self.fabric.on_complete(dst);
    }

    fn flush_after(&mut self, seq: u64, flushed_dests: &[PhysReg]) {
        self.fabric.flush_after(seq);
        while self.siq.back().map(|u| u.seq > seq).unwrap_or(false) {
            self.siq.pop_back();
        }
        for q in &mut self.piqs {
            q.flush_after(seq);
        }
        for d in flushed_dests {
            self.loc.clear(*d);
        }
        if self.cfg.ldt_steering {
            for d in flushed_dests {
                self.dt.clear(*d);
            }
            // Squashed issued loads must not contribute delay samples.
            self.inflight.retain(|(d, _)| !flushed_dests.contains(d));
        }
        for e in &mut self.lfst_steer {
            if e.map(|s| s.store_seq > seq).unwrap_or(false) {
                *e = None;
            }
        }
    }

    fn occupancy(&self) -> usize {
        self.siq.len() + self.piqs.iter().map(|q| q.len()).sum::<usize>()
    }

    fn capacity(&self) -> usize {
        self.cfg.siq_entries + self.cfg.num_piqs * self.cfg.piq_entries
    }

    fn energy_events(&self) -> SchedEnergyEvents {
        let mut e = self.energy;
        e.loc_reads += self.loc.reads + self.dt.reads;
        e.loc_writes += self.loc.writes + self.dt.writes;
        e
    }

    fn issue_breakdown(&self) -> IssueBreakdown {
        self.breakdown
    }

    fn steer_stats(&self) -> SteerStats {
        self.steer
    }

    fn head_stats(&self) -> HeadStateStats {
        self.heads
    }

    fn next_event_cycle(&self, ctx: &ReadyCtx<'_>, pending: Option<&SchedUop>) -> Option<u64> {
        if pending.is_some() && self.siq.len() < self.cfg.siq_entries {
            return None; // dispatch would be accepted this cycle
        }
        let mut horizon = u64::MAX;
        // P-IQ heads. The single-active-head toggle visits both partitions
        // of a shared queue across idle cycles, so both heads must hold
        // still and both bound the horizon: a non-held head issues when
        // its sources arrive, and a held head's recorded state flips from
        // StallNonReady to StallMdepLoad at the same point.
        for q in &self.piqs {
            for part in [PartId(0), PartId(1)] {
                let Some(head) = q.front(part) else { continue };
                if ctx.is_ready(head) {
                    return None;
                }
                let rc = ctx.scb.srcs_ready_cycle(&head.srcs);
                if rc != u64::MAX && rc > ctx.cycle {
                    horizon = horizon.min(rc);
                }
            }
        }
        let shape = self.idle_window_shape(ctx)?;
        Some(horizon.min(shape.horizon))
    }

    fn note_idle_cycles(&mut self, ctx: &ReadyCtx<'_>, _pending: Option<&SchedUop>, k: u64) {
        if k == 0 {
            return;
        }
        if self.cfg.ldt_steering {
            // The first idle `issue` call would have drained the
            // observation queue; it cannot refill during an idle window,
            // so one drain replicates all k.
            self.observe_loads(ctx);
        }
        // ---- 1. P-IQ heads: replay examinations, head-state records and
        //         the active-pointer toggle in closed form.
        for qi in 0..self.piqs.len() {
            let state_of = |head: &SchedUop| {
                if ctx.is_mdp_blocked(head) {
                    HeadState::StallMdepLoad
                } else {
                    HeadState::StallNonReady
                }
            };
            // (head examinations, up to two (state, count) records)
            let (exams, rec0, rec1) = {
                let q = &self.piqs[qi];
                if !q.is_shared() {
                    match q.front(PartId(0)) {
                        None => (0, Some((HeadState::Empty, k)), None),
                        Some(h) => (k, Some((state_of(h), k)), None),
                    }
                } else if self.cfg.ideal_sharing {
                    // Both heads examined every cycle; the partition-0
                    // head is the one recorded.
                    let mut exams = 0;
                    let s0 = match q.front(PartId(0)) {
                        None => HeadState::Empty,
                        Some(h) => {
                            exams += k;
                            state_of(h)
                        }
                    };
                    if q.front(PartId(1)).is_some() {
                        exams += k;
                    }
                    (exams, Some((s0, k)), None)
                } else {
                    let a = q.active_part();
                    let b = PartId(1 - a.0);
                    match (q.front(a), q.front(b)) {
                        (Some(ha), Some(hb)) => {
                            // Period-2 alternation: active head first.
                            (
                                k,
                                Some((state_of(ha), k - k / 2)),
                                Some((state_of(hb), k / 2)),
                            )
                        }
                        (Some(ha), None) => (k, Some((state_of(ha), k)), None),
                        (None, Some(hb)) => {
                            // One Empty observation, then the pointer
                            // leaves the drained partition for good.
                            (
                                k - 1,
                                Some((HeadState::Empty, 1)),
                                Some((state_of(hb), k - 1)),
                            )
                        }
                        (None, None) => {
                            debug_assert!(false, "shared P-IQ with both partitions empty");
                            (0, None, None)
                        }
                    }
                }
            };
            self.energy.head_examinations += exams;
            if let Some((s, n)) = rec0 {
                self.heads.record_n(s, n);
            }
            if let Some((s, n)) = rec1 {
                self.heads.record_n(s, n);
            }
            self.piqs[qi].end_idle_cycles(k);
        }
        // ---- 2. S-IQ window: lingering entries cost one examination
        //         each; a failed-steer blocker re-probes the steering
        //         tables every cycle.
        if let Some(shape) = self.idle_window_shape(ctx) {
            self.energy.head_examinations += k * shape.lingerers as u64;
            if shape.blocker {
                let b = self.siq[shape.lingerers];
                self.energy.head_examinations += k;
                self.energy.steer_ops += k;
                if self.mda_probe_charges(&b) {
                    self.energy.loc_reads += k;
                }
                let n_srcs = b.srcs.iter().flatten().count() as u64;
                if self.cfg.ldt_steering && (b.is_load() || b.is_store()) {
                    // The failed `ldt_target` probe re-reads the delay
                    // table for each source every cycle.
                    self.dt.reads += k * n_srcs;
                }
                self.loc.reads += k * n_srcs;
                self.steer.record_n(SteerEvent::StallNonReady, k);
            }
        }
    }

    fn debug_locate(&self, seq: u64) -> String {
        let mut s = String::new();
        if let Some(i) = self.siq.iter().position(|u| u.seq == seq) {
            s.push_str(&format!(
                "siq[{i}] (window {}, len {}); ",
                self.cfg.siq_window,
                self.siq.len()
            ));
        }
        for (k, q) in self.piqs.iter().enumerate() {
            for (j, u) in q.iter().enumerate() {
                if u.seq == seq {
                    s.push_str(&format!(
                        "piq[{k}][{j}] shared={} active={:?} f0={:?} f1={:?}; ",
                        q.is_shared(),
                        q.active_part(),
                        q.front(PartId(0)).map(|u| u.seq),
                        q.front(PartId(1)).map(|u| u.seq),
                    ));
                }
            }
        }
        s.push_str(&format!("fabric: {}", self.fabric.debug_entry(seq)));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballerino_isa::{OpClass, PortId};
    use ballerino_mem::SsId;
    use ballerino_sched::{FuBusy, HeldSet, Scoreboard};

    fn op(seq: u64, dst: Option<u32>, srcs: [Option<u32>; 2]) -> SchedUop {
        SchedUop {
            port: PortId((seq % 4) as u8),
            srcs: [srcs[0].map(PhysReg), srcs[1].map(PhysReg)],
            dst: dst.map(PhysReg),
            ..SchedUop::test_op(seq)
        }
    }

    struct Rig {
        b: Ballerino,
        scb: Scoreboard,
        held: HeldSet,
    }

    impl Rig {
        fn new(cfg: BallerinoConfig) -> Self {
            Rig {
                b: Ballerino::new(cfg),
                scb: Scoreboard::new(348),
                held: HeldSet::new(),
            }
        }

        fn dispatch(&mut self, u: SchedUop) -> DispatchOutcome {
            let ctx = ReadyCtx {
                cycle: 0,
                scb: &self.scb,
                held: &self.held,
            };
            self.b.try_dispatch(u, &ctx)
        }

        fn issue(&mut self, cycle: u64) -> Vec<u64> {
            let ctx = ReadyCtx {
                cycle,
                scb: &self.scb,
                held: &self.held,
            };
            let busy = FuBusy::new();
            let mut pa = PortAlloc::new(8, 8, &busy, cycle);
            let mut out = Vec::new();
            self.b.issue(&ctx, &mut pa, &mut out);
            out
        }
    }

    #[test]
    fn ready_ops_issue_speculatively_without_piq_allocation() {
        let mut r = Rig::new(BallerinoConfig::eight_wide());
        for i in 0..4 {
            assert_eq!(
                r.dispatch(op(i, None, [None, None])),
                DispatchOutcome::Accepted
            );
        }
        let out = r.issue(0);
        assert_eq!(out.len(), 4);
        assert_eq!(r.b.issue_breakdown().from_siq, 4);
        assert_eq!(r.b.piqs.iter().map(|q| q.len()).sum::<usize>(), 0);
    }

    #[test]
    fn far_nonready_ops_are_steered_along_chains() {
        let mut r = Rig::new(BallerinoConfig::eight_wide());
        for p in [10, 11, 12] {
            r.scb.allocate(PhysReg(p));
        }
        // Producer never issues; chain 10 -> 11 -> 12.
        r.dispatch(op(0, Some(11), [Some(10), None]));
        r.dispatch(op(1, Some(12), [Some(11), None]));
        let out = r.issue(0);
        assert!(out.is_empty());
        assert_eq!(r.b.piq_len(0), 2, "chain shares one P-IQ");
        assert_eq!(r.b.steer_stats().steer_dc, 1);
        assert_eq!(r.b.steer_stats().alloc_nonready, 1);
    }

    #[test]
    fn soon_ready_consumer_lingers_for_back_to_back() {
        let mut r = Rig::new(BallerinoConfig::eight_wide());
        r.scb.allocate(PhysReg(10));
        r.dispatch(op(0, Some(10), [None, None])); // ready producer
        r.dispatch(op(1, Some(11), [Some(10), None])); // consumer
                                                       // Cycle 0: producer issues; consumer is 1 cycle from ready and
                                                       // must NOT be steered.
        let out = r.issue(0);
        assert_eq!(out, vec![0]);
        r.scb.set_ready_at(PhysReg(10), 1); // pipeline would do this at issue
        r.b.on_complete(PhysReg(10)); // ...and deliver this edge at writeback
        assert_eq!(r.b.siq_len(), 1);
        assert_eq!(r.b.piq_len(0), 0);
        // Cycle 1: back-to-back issue from the S-IQ.
        let out = r.issue(1);
        assert_eq!(out, vec![1]);
        assert_eq!(r.b.issue_breakdown().from_siq, 2);
    }

    #[test]
    fn piq_head_issues_when_long_latency_producer_completes() {
        let mut r = Rig::new(BallerinoConfig::eight_wide());
        r.scb.allocate(PhysReg(10));
        r.dispatch(op(1, Some(11), [Some(10), None]));
        let _ = r.issue(0); // steered to P-IQ 0
        assert_eq!(r.b.piq_len(0), 1);
        r.scb.set_ready_at(PhysReg(10), 40);
        r.b.on_complete(PhysReg(10));
        let out = r.issue(40);
        assert_eq!(out, vec![1]);
        assert_eq!(r.b.issue_breakdown().from_piq, 1);
    }

    #[test]
    fn sharing_activates_when_piqs_exhausted() {
        let mut r = Rig::new(BallerinoConfig {
            num_piqs: 2,
            ..BallerinoConfig::eight_wide()
        });
        for p in 10..20 {
            r.scb.allocate(PhysReg(p));
        }
        // Three independent blocked chains; only 2 P-IQs.
        r.dispatch(op(0, Some(15), [Some(10), None]));
        r.dispatch(op(1, Some(16), [Some(11), None]));
        r.dispatch(op(2, Some(17), [Some(12), None]));
        let _ = r.issue(0);
        assert_eq!(r.b.sharing_activations, 1);
        assert!(r.b.piq_shared(0));
        assert_eq!(r.b.piq_len(0), 2);
        assert_eq!(r.b.steer_stats().steer_shared, 1);
    }

    #[test]
    fn sharing_disabled_blocks_third_chain_in_siq() {
        let mut r = Rig::new(BallerinoConfig {
            num_piqs: 2,
            piq_sharing: false,
            ..BallerinoConfig::eight_wide()
        });
        for p in 10..20 {
            r.scb.allocate(PhysReg(p));
        }
        r.dispatch(op(0, Some(15), [Some(10), None]));
        r.dispatch(op(1, Some(16), [Some(11), None]));
        r.dispatch(op(2, Some(17), [Some(12), None]));
        let _ = r.issue(0);
        assert_eq!(r.b.siq_len(), 1, "third chain stalls in S-IQ");
        assert!(r.b.steer_stats().stall_nonready > 0);
    }

    #[test]
    fn steering_stall_blocks_younger_window_entries() {
        let mut r = Rig::new(BallerinoConfig {
            num_piqs: 1,
            piq_sharing: false,
            ..BallerinoConfig::eight_wide()
        });
        for p in 10..20 {
            r.scb.allocate(PhysReg(p));
        }
        r.dispatch(op(0, Some(15), [Some(10), None])); // takes P-IQ 0
        r.dispatch(op(1, Some(16), [Some(11), None])); // stalls: no queue
        r.dispatch(op(2, None, [None, None])); // ready, behind the stall
        let out = r.issue(0);
        assert!(
            out.is_empty(),
            "blocked head must not let younger μops issue: {out:?}"
        );
    }

    #[test]
    fn shared_partition_issues_out_of_order_wrt_other_partition() {
        let mut r = Rig::new(BallerinoConfig {
            num_piqs: 1,
            ..BallerinoConfig::eight_wide()
        });
        for p in 10..20 {
            r.scb.allocate(PhysReg(p));
        }
        r.dispatch(op(0, Some(15), [Some(10), None])); // chain A -> P-IQ 0
        r.dispatch(op(1, Some(16), [Some(11), None])); // chain B -> shared part 1
        let _ = r.issue(0);
        assert!(r.b.piq_shared(0));
        // Chain B's producer completes first.
        r.scb.set_ready_at(PhysReg(11), 10);
        r.b.on_complete(PhysReg(11));
        // The active head starts at partition 0 (blocked); with no issue
        // it toggles, so within two cycles partition 1 must issue.
        let mut issued = Vec::new();
        for t in 10..13 {
            issued.extend(r.issue(t));
        }
        assert_eq!(issued, vec![1], "younger chain must bypass the blocked one");
    }

    #[test]
    fn ideal_sharing_issues_without_toggle_delay() {
        let mut r = Rig::new(BallerinoConfig {
            num_piqs: 1,
            ideal_sharing: true,
            ..BallerinoConfig::eight_wide()
        });
        for p in 10..20 {
            r.scb.allocate(PhysReg(p));
        }
        r.dispatch(op(0, Some(15), [Some(10), None]));
        r.dispatch(op(1, Some(16), [Some(11), None]));
        let _ = r.issue(0);
        r.scb.set_ready_at(PhysReg(11), 10);
        r.b.on_complete(PhysReg(11));
        let out = r.issue(10);
        assert_eq!(out, vec![1], "ideal mode examines both heads every cycle");
    }

    #[test]
    fn mda_steering_places_load_behind_store() {
        let mut r = Rig::new(BallerinoConfig::eight_wide());
        r.scb.allocate(PhysReg(20));
        let mut st = op(0, None, [Some(20), None]);
        st.class = OpClass::Store;
        st.ssid = Some(SsId(3));
        st.port = PortId(2);
        r.dispatch(st);
        let mut ld = op(1, Some(30), [None, None]);
        ld.class = OpClass::Load;
        ld.ssid = Some(SsId(3));
        ld.mdp_wait = Some(0);
        ld.port = PortId(3);
        r.held.insert(1); // register-ready but MDP-held
        r.dispatch(ld);
        let _ = r.issue(0);
        assert_eq!(
            r.b.piq_len(0),
            2,
            "store and its M-dependent load share P-IQ 0"
        );
        assert_eq!(r.b.steer_stats().steer_dc, 1);
    }

    #[test]
    fn without_mda_held_load_takes_own_piq() {
        let mut r = Rig::new(BallerinoConfig::step1());
        r.scb.allocate(PhysReg(20));
        let mut st = op(0, None, [Some(20), None]);
        st.class = OpClass::Store;
        st.ssid = Some(SsId(3));
        r.dispatch(st);
        let mut ld = op(1, Some(30), [None, None]);
        ld.class = OpClass::Load;
        ld.ssid = Some(SsId(3));
        r.held.insert(1);
        r.dispatch(ld);
        let _ = r.issue(0);
        assert_eq!(r.b.piq_len(0), 1);
        assert_eq!(
            r.b.piq_len(1),
            1,
            "Step 1 wastes a P-IQ on the M-dependent load"
        );
    }

    #[test]
    fn ready_but_port_denied_is_steered_to_new_head() {
        let mut r = Rig::new(BallerinoConfig::eight_wide());
        // Two ready μops competing for the same port.
        let mut a = op(0, None, [None, None]);
        a.port = PortId(5);
        let mut b = op(1, None, [None, None]);
        b.port = PortId(5);
        r.dispatch(a);
        r.dispatch(b);
        let out = r.issue(0);
        assert_eq!(out, vec![0]);
        assert_eq!(r.b.piq_len(0), 1, "loser steered to a P-IQ head");
        assert_eq!(r.b.steer_stats().alloc_ready, 1);
        // Next cycle it issues from the P-IQ head.
        let out = r.issue(1);
        assert_eq!(out, vec![1]);
        assert_eq!(r.b.issue_breakdown().from_piq, 1);
    }

    #[test]
    fn piq_heads_win_port_arbitration_over_siq() {
        let mut r = Rig::new(BallerinoConfig::eight_wide());
        r.scb.allocate(PhysReg(10));
        let mut old = op(0, Some(15), [Some(10), None]);
        old.port = PortId(5);
        r.dispatch(old);
        let _ = r.issue(0); // steered to P-IQ
                            // Make it ready, then race a younger ready S-IQ μop on the port.
        r.scb.set_ready_at(PhysReg(10), 5);
        r.b.on_complete(PhysReg(10));
        let mut young = op(1, None, [None, None]);
        young.port = PortId(5);
        r.dispatch(young);
        let out = r.issue(5);
        assert_eq!(out, vec![0], "P-IQ head (older) has select priority");
    }

    #[test]
    fn flush_clears_siq_piqs_and_lfst() {
        let mut r = Rig::new(BallerinoConfig::eight_wide());
        r.scb.allocate(PhysReg(10));
        let mut st = op(0, None, [Some(10), None]);
        st.class = OpClass::Store;
        st.ssid = Some(SsId(2));
        r.dispatch(st);
        r.dispatch(op(1, Some(11), [Some(10), None]));
        r.dispatch(op(2, Some(12), [None, None]));
        let _ = r.issue(0); // st and op1 steered (both depend on 10)
        r.b.flush_after(0, &[PhysReg(11), PhysReg(12)]);
        assert_eq!(r.b.occupancy(), 1);
        // LFST steering entry for a younger store would be gone; here the
        // store itself (seq 0) survives.
        assert_eq!(r.b.piqs.iter().map(|q| q.len()).sum::<usize>(), 1);
    }

    #[test]
    fn capacity_counts_siq_plus_piqs() {
        let b = Ballerino::new(BallerinoConfig::eight_wide());
        assert_eq!(b.capacity(), 8 + 7 * 12);
        let b12 = Ballerino::new(BallerinoConfig::twelve());
        assert_eq!(b12.capacity(), 8 + 11 * 12);
    }

    #[test]
    fn siq_full_stalls_dispatch() {
        let mut r = Rig::new(BallerinoConfig::eight_wide());
        r.scb.allocate(PhysReg(10));
        for i in 0..8 {
            assert_eq!(
                r.dispatch(op(i, None, [Some(10), None])),
                DispatchOutcome::Accepted
            );
        }
        assert_eq!(
            r.dispatch(op(8, None, [Some(10), None])),
            DispatchOutcome::Stall(StallReason::Full)
        );
    }

    #[test]
    fn ldt_steering_places_memory_op_behind_predicted_tail() {
        let mut r = Rig::new(BallerinoConfig::ldt());
        r.scb.allocate(PhysReg(10));
        r.scb.allocate(PhysReg(20));
        // Load A annotates dst 10 with the tracked delay and issues.
        let mut a = op(0, Some(10), [None, None]);
        a.class = OpClass::Load;
        r.dispatch(a);
        // Chain head C is steered to a fresh P-IQ; its dst prediction
        // (exec latency) becomes a steering tail candidate.
        r.dispatch(op(1, Some(21), [Some(20), None]));
        // Load D consumes A's dst: its prediction (4) covers C's tail
        // prediction (1), so LDT steering queues it behind C.
        let mut d = op(2, Some(11), [Some(10), None]);
        d.class = OpClass::Load;
        r.dispatch(d);
        let out = r.issue(0);
        assert_eq!(out, vec![0]);
        assert_eq!(r.b.piq_len(0), 2, "D steered behind C's predicted tail");
        assert_eq!(r.b.steer_stats().steer_dc, 1);
        assert_eq!(r.b.steer_stats().alloc_nonready, 1);
        // A's actual delay is observed at the next scheduler activity.
        r.scb.set_ready_at(PhysReg(10), 20);
        let _ = r.issue(1);
        assert_eq!(r.b.tracked_delay(), (3 * INITIAL_TRACKED_DELAY + 20) / 4);
    }

    #[test]
    fn names_encode_steps() {
        assert_eq!(
            Ballerino::new(BallerinoConfig::eight_wide()).name(),
            "ballerino-8"
        );
        assert_eq!(
            Ballerino::new(BallerinoConfig::twelve()).name(),
            "ballerino-12"
        );
        assert_eq!(
            Ballerino::new(BallerinoConfig::step1()).name(),
            "ballerino-8-step1"
        );
        assert_eq!(
            Ballerino::new(BallerinoConfig::step2()).name(),
            "ballerino-8-step2"
        );
        assert_eq!(
            Ballerino::new(BallerinoConfig::step3_ideal()).name(),
            "ballerino-8-ideal"
        );
        assert_eq!(
            Ballerino::new(BallerinoConfig::ldt()).name(),
            "ballerino-8-ldt"
        );
    }
}
