//! # ballerino-core
//!
//! The paper's contribution: the **Ballerino** instruction scheduler —
//! *BALanced and cache-miss-toLERable dynamic scheduling via cascaded and
//! clustered IN-Order IQs* (MICRO 2022).
//!
//! Ballerino composes three mechanisms on top of purely in-order queues:
//!
//! 1. **Speculative issue (S-IQ)** — a small FIFO ahead of the cluster
//!    filters out ready-at-dispatch μops and their soon-ready consumers,
//!    issuing them without ever occupying a P-IQ (§III-A),
//! 2. **M/R-dependence steering** — non-ready μops are steered into
//!    clustered in-order P-IQs along their dependence chains, with
//!    memory-dependence-aware (MDA) steering placing a predicted
//!    M-dependent load directly behind its producer store (§III-B),
//! 3. **P-IQ sharing** — when no empty P-IQ exists, an eligible P-IQ is
//!    split into two equal partitions that act as distinct FIFOs, each
//!    hosting a dependence chain, with one active head per cycle (§III-C,
//!    §IV-D) — plus an *ideal* variant lifting the implementation
//!    constraints (Fig. 13).
//!
//! The scheduler implements the [`ballerino_sched::Scheduler`] trait and
//! plugs into the `ballerino-sim` pipeline exactly like the baselines.

#![warn(missing_docs)]

pub mod piq;
pub mod scheduler;

pub use piq::{PartId, Piq};
pub use scheduler::{Ballerino, BallerinoConfig};
