//! # ballerino
//!
//! Facade crate for the Ballerino issue-queue reproduction (MICRO 2022,
//! "Reconstructing Out-of-Order Issue Queue"). Re-exports the workspace
//! crates under one roof so examples and downstream users can write
//! `use ballerino::prelude::*;`.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use ballerino_analytic as analytic;
pub use ballerino_bench as bench;
pub use ballerino_core as core;
pub use ballerino_energy as energy;
pub use ballerino_frontend as frontend;
pub use ballerino_isa as isa;
pub use ballerino_mem as mem;
pub use ballerino_sched as sched;
pub use ballerino_serve as serve;
pub use ballerino_sim as sim;
pub use ballerino_workloads as workloads;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use ballerino_isa::{ArchReg, MicroOp, OpClass, PortMap, Trace};
}
