//! Design-space exploration: how many P-IQs does Ballerino need, and
//! what does P-IQ sharing buy at each point?
//!
//! Sweeps the P-IQ count with sharing on/off over an ILP-rich workload —
//! the experiment an architect would run before committing to a cluster
//! size (the paper's Fig. 17c plus the Step-3 ablation).
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use ballerino::core::{Ballerino, BallerinoConfig};
use ballerino::energy::StructureSizes;
use ballerino::sim::{Core, CoreConfig, Width};
use ballerino::workloads::workload;

fn run(piqs: usize, sharing: bool, trace: &ballerino::isa::Trace) -> f64 {
    let cfg = CoreConfig::preset(Width::Eight);
    let bcfg = BallerinoConfig {
        num_piqs: piqs,
        piq_sharing: sharing,
        num_phys_regs: cfg.total_phys(),
        ..BallerinoConfig::eight_wide()
    };
    let sizes = StructureSizes {
        cam_entries: 0,
        fifo_entries: bcfg.siq_entries + piqs * bcfg.piq_entries,
        has_steer: true,
        rob_entries: cfg.rob_entries,
        lsq_entries: cfg.lq_entries + cfg.sq_entries,
        prf_entries: cfg.total_phys(),
        has_mdp: true,
    };
    Core::new(cfg, Box::new(Ballerino::new(bcfg)), sizes)
        .run(trace)
        .ipc()
}

fn main() {
    let trace = workload("gemm_blocked", 20_000, 42);
    println!(
        "P-IQ design space on {} ({} μops)\n",
        trace.name,
        trace.len()
    );
    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "P-IQs", "IPC (shared)", "IPC (no shr)", "sharing gain"
    );
    for piqs in [3usize, 5, 7, 9, 11, 13] {
        let with = run(piqs, true, &trace);
        let without = run(piqs, false, &trace);
        println!(
            "{piqs:>6} {with:>14.3} {without:>14.3} {:>11.1}%",
            100.0 * (with / without - 1.0)
        );
    }
    println!(
        "\nSharing matters most when dependence chains outnumber the \
         physical P-IQs; once the cluster is large enough, the gain fades \
         (the diminishing returns past eleven P-IQs in Fig. 17c)."
    );
}
