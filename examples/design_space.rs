//! Design-space exploration with the tiered-fidelity sweep engine.
//!
//! Enumerates a small grid over scheduler kinds, machine widths and
//! IQ-entry budgets, triages every point with the millisecond-scale
//! tier-0 analytic model, and promotes only the points that could be on
//! the cost/performance Pareto frontier to cycle-accurate simulation —
//! the workflow an architect would use to cut a thousand-point space
//! down to the handful worth simulating (scaled down here so the example
//! finishes in seconds; `sweep_bench` runs the full 2556-point grid).
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use ballerino::bench::{run_sweep, SweepSpec};
use ballerino::sim::{MachineKind, Width};

fn main() {
    let spec = SweepSpec {
        kinds: vec![
            MachineKind::InOrder,
            MachineKind::Ces,
            MachineKind::Ballerino,
            MachineKind::OutOfOrder,
        ],
        widths: vec![Width::Two, Width::Eight],
        iq_budgets: vec![None, Some(32), Some(128)],
        dram_scales: vec![100],
        workloads: vec!["gemm_blocked", "pointer_chase", "branchy_sort"],
        n: 8_000,
        seed: 42,
    };
    let points = spec.points();
    println!(
        "tiered sweep: {} points, {} workloads, margin ±{}%\n",
        points.len(),
        spec.workloads.len(),
        spec.margin_pct()
    );

    let outcome = run_sweep(&spec);
    println!(
        "tier-0 triage {:.0} ms -> promoted {}/{} points -> simulation {:.2} s\n",
        outcome.tier0_wall_s * 1e3,
        outcome.promoted.len(),
        outcome.points.len(),
        outcome.sim_wall_s
    );

    println!("simulated Pareto frontier (cost-ascending):");
    println!(
        "{:<26} {:>8} {:>12} {:>12} {:>8}",
        "design point", "cost", "sim cycles", "tier0 est", "err"
    );
    for i in outcome.simulated_frontier() {
        let sim = outcome.sim_cycles[i].expect("frontier points are simulated");
        let est = outcome.est_cycles[i];
        println!(
            "{:<26} {:>8} {:>12} {:>12} {:>7.1}%",
            outcome.points[i].label(),
            outcome.costs[i],
            sim,
            est,
            100.0 * (est as f64 - sim as f64) / sim as f64
        );
    }
    println!(
        "\nEvery point the tier-0 model could not prove dominated was \
         simulated, so the frontier above is exact — the analytic tier \
         only decided *where to spend* cycle-accurate time."
    );
}
