//! Authoring a custom workload with the kernel DSL and evaluating every
//! scheduler on it.
//!
//! Builds a reduction loop with a long FP accumulation chain fed by
//! strided loads — a shape none of the built-in suite covers exactly —
//! and compares all six microarchitectures.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use ballerino::isa::OpClass;
use ballerino::sim::{run_machine, MachineKind, Width};
use ballerino::workloads::{Access, BranchBehavior, Kernel, KernelParams, StaticOp};

fn main() {
    // dot-product-like kernel: 4 strided load streams feeding FP
    // multiply-accumulate chains that merge pairwise each iteration.
    let body = vec![
        StaticOp::Load {
            chain: 0,
            access: Access::Seq { stride: 8 },
        },
        StaticOp::Load {
            chain: 1,
            access: Access::Seq { stride: 8 },
        },
        StaticOp::Load {
            chain: 2,
            access: Access::Seq { stride: 8 },
        },
        StaticOp::Load {
            chain: 3,
            access: Access::Seq { stride: 8 },
        },
        StaticOp::Compute {
            class: OpClass::FpMul,
            chain: 0,
        },
        StaticOp::Compute {
            class: OpClass::FpMul,
            chain: 1,
        },
        StaticOp::Compute {
            class: OpClass::FpMul,
            chain: 2,
        },
        StaticOp::Compute {
            class: OpClass::FpMul,
            chain: 3,
        },
        StaticOp::Merge {
            class: OpClass::FpAdd,
            chain: 0,
            other: 1,
        },
        StaticOp::Merge {
            class: OpClass::FpAdd,
            chain: 2,
            other: 3,
        },
        StaticOp::Merge {
            class: OpClass::FpAdd,
            chain: 0,
            other: 2,
        },
        StaticOp::Branch {
            chain: 0,
            behavior: BranchBehavior::Loop { period: 64 },
        },
    ];
    let kernel = Kernel::new(
        KernelParams {
            name: "dot_product".into(),
            ws_bytes: 512 << 10,
            chains: 4,
            seed: 1,
        },
        body,
    );
    let trace = kernel.generate(20_000);
    let stats = trace.stats();
    println!(
        "custom kernel {}: {} μops ({:.0}% loads, {:.0}% branches)\n",
        trace.name,
        trace.len(),
        100.0 * stats.load_frac(),
        100.0 * stats.branch_frac()
    );

    println!("{:<14}{:>8}{:>12}", "design", "IPC", "violations");
    for kind in [
        MachineKind::InOrder,
        MachineKind::Casino,
        MachineKind::Ces,
        MachineKind::Fxa,
        MachineKind::Ballerino,
        MachineKind::OutOfOrder,
    ] {
        let r = run_machine(kind, Width::Eight, &trace);
        println!("{:<14}{:>8.3}{:>12}", kind.label(), r.ipc(), r.violations);
    }
}
