//! Memory-level-parallelism case study: why cache-miss tolerance needs
//! *clustered* (not cascaded) in-order queues.
//!
//! The workload interleaves two independent pointer chases over a
//! DRAM-sized working set (the paper's §II-C motivation). A stall-on-use
//! in-order core and CASINO serialize the two chains — the second chain's
//! load sits behind the first's in the final in-order IQ — while CES and
//! Ballerino keep each chain in its own P-IQ, overlapping the misses.
//!
//! ```sh
//! cargo run --release --example pointer_chase_mlp
//! ```

use ballerino::sim::{run_machine, MachineKind, Width};
use ballerino::workloads::workload;

fn main() {
    let trace = workload("pointer_chase", 15_000, 7);
    println!(
        "two interleaved pointer chases over 48 MiB ({} μops)\n",
        trace.len()
    );

    let ino = run_machine(MachineKind::InOrder, Width::Eight, &trace);
    println!(
        "{:<14} {:>8} {:>10} {:>10}",
        "design", "IPC", "cycles", "vs InO"
    );
    for kind in [
        MachineKind::InOrder,
        MachineKind::Casino,
        MachineKind::Ces,
        MachineKind::Ballerino,
        MachineKind::OutOfOrder,
    ] {
        let r = run_machine(kind, Width::Eight, &trace);
        println!(
            "{:<14} {:>8.3} {:>10} {:>9.2}x",
            kind.label(),
            r.ipc(),
            r.cycles,
            r.speedup_over(&ino)
        );
    }

    println!(
        "\nCASINO ≈ InO here (its last IQ issues in program order, so one \
         missing load blocks the other chain), while the dependence-based \
         designs overlap both misses — the paper's cache-miss-tolerance \
         argument in §II-C and §III-C."
    );
}
