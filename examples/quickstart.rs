//! Quickstart: simulate the Ballerino scheduler against the out-of-order
//! baseline on one workload and print performance and energy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ballerino::energy::{DvfsLevel, EnergyModel};
use ballerino::sim::{run_machine, MachineKind, Width};
use ballerino::workloads::workload;

fn main() {
    // A 20k-μop synthetic hash-join region (see ballerino-workloads for
    // the full suite standing in for the paper's SPEC SimPoints).
    let trace = workload("hash_join", 20_000, 42);
    println!("workload: {} ({} μops)\n", trace.name, trace.len());

    for kind in [
        MachineKind::InOrder,
        MachineKind::Ballerino,
        MachineKind::Ballerino12,
        MachineKind::OutOfOrder,
    ] {
        let r = run_machine(kind, Width::Eight, &trace);
        let model = EnergyModel::new(r.sizes, DvfsLevel::L4);
        let energy_uj = model.breakdown(&r.energy).total() * 1e-6;
        println!(
            "{:<14} IPC {:>5.2}   cycles {:>8}   energy {:>7.1} µJ   EDP {:.3e}",
            kind.label(),
            r.ipc(),
            r.cycles,
            energy_uj,
            model.edp(&r.energy),
        );
    }

    println!(
        "\nBallerino reaches near-OoO performance from purely in-order queues \
         while spending far less scheduling energy (Figs. 11/15/16 of the paper)."
    );
}
